//! Dependent-variable constraints.
//!
//! The paper (§II footnote 2) notes that dependent tunable variables are
//! handled with the techniques of the authors' SC'04 work ("Using Information
//! from Prior Runs to Improve Automated Tuning Systems"): instead of letting
//! the simplex wander into infeasible corners, dependent values are *repaired*
//! in the continuous embedding so the search effectively moves in a feasible
//! subspace. The canonical example in this paper is the PETSc matrix
//! decomposition, where partition boundaries must form a non-decreasing chain.

use crate::error::Result;
use crate::space::{Configuration, SearchSpace};
use std::fmt::Debug;

/// A repairable relation between parameters of a [`SearchSpace`].
pub trait Constraint: Send + Sync + Debug {
    /// Mutate a continuous point so that it satisfies the constraint.
    /// Called before lattice projection; must be idempotent.
    fn repair(&self, space: &SearchSpace, coords: &mut [f64]);

    /// Whether a projected configuration satisfies the constraint.
    fn is_satisfied(&self, space: &SearchSpace, cfg: &Configuration) -> bool;

    /// Validate that the constraint's parameter references exist in the
    /// space. Called once at space construction.
    fn check_space(&self, space: &SearchSpace) -> Result<()>;
}

fn indices(space: &SearchSpace, names: &[String]) -> Result<Vec<usize>> {
    names
        .iter()
        .map(|n| {
            space
                .index_of(n)
                .ok_or_else(|| crate::error::HarmonyError::UnknownParam(n.clone()))
        })
        .collect()
}

/// Requires the named parameters to form a non-decreasing chain
/// `p1 ≤ p2 ≤ … ≤ pk` (e.g. partition boundaries in a matrix decomposition).
///
/// Repair sorts the involved coordinates in place, which is the closest
/// feasible chain under permutation distance and keeps the simplex volume
/// intact.
#[derive(Debug, Clone)]
pub struct MonotoneChain {
    names: Vec<String>,
}

impl MonotoneChain {
    /// Build a chain constraint over parameters in the given order.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        MonotoneChain {
            names: names.into_iter().map(Into::into).collect(),
        }
    }
}

impl Constraint for MonotoneChain {
    fn repair(&self, space: &SearchSpace, coords: &mut [f64]) {
        let idx = match indices(space, &self.names) {
            Ok(i) => i,
            Err(_) => return,
        };
        let mut vals: Vec<f64> = idx.iter().map(|&i| coords[i]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for (&i, v) in idx.iter().zip(vals) {
            coords[i] = v;
        }
    }

    fn is_satisfied(&self, _space: &SearchSpace, cfg: &Configuration) -> bool {
        let mut prev = f64::NEG_INFINITY;
        for n in &self.names {
            let v = match cfg.get(n) {
                Some(v) => v.as_int().map(|i| i as f64).or(v.as_real()),
                None => return false,
            };
            match v {
                Some(v) if v >= prev => prev = v,
                _ => return false,
            }
        }
        true
    }

    fn check_space(&self, space: &SearchSpace) -> Result<()> {
        indices(space, &self.names).map(|_| ())
    }
}

/// Requires the sum of the named integer parameters to stay within
/// `[min_sum, max_sum]`; used for distributions that must add up to a total
/// (e.g. "rows per processor" summing to the matrix size).
///
/// Repair rescales all involved coordinates proportionally towards the
/// nearest bound.
#[derive(Debug, Clone)]
pub struct SumBound {
    names: Vec<String>,
    min_sum: f64,
    max_sum: f64,
}

impl SumBound {
    /// Build a sum constraint over the named parameters.
    pub fn new<I, S>(names: I, min_sum: f64, max_sum: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SumBound {
            names: names.into_iter().map(Into::into).collect(),
            min_sum,
            max_sum,
        }
    }

    /// Exact-sum convenience: `min_sum == max_sum == total`.
    pub fn exact<I, S>(names: I, total: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(names, total, total)
    }
}

impl Constraint for SumBound {
    fn repair(&self, space: &SearchSpace, coords: &mut [f64]) {
        let idx = match indices(space, &self.names) {
            Ok(i) => i,
            Err(_) => return,
        };
        let sum: f64 = idx.iter().map(|&i| coords[i].max(0.0)).sum();
        let target = if sum < self.min_sum {
            self.min_sum
        } else if sum > self.max_sum {
            self.max_sum
        } else {
            return;
        };
        if sum <= f64::EPSILON {
            // Degenerate all-zero point: distribute the target evenly.
            let share = target / idx.len() as f64;
            for &i in &idx {
                coords[i] = share;
            }
            return;
        }
        let scale = target / sum;
        for &i in &idx {
            coords[i] = coords[i].max(0.0) * scale;
        }
    }

    fn is_satisfied(&self, _space: &SearchSpace, cfg: &Configuration) -> bool {
        let mut sum = 0.0;
        for n in &self.names {
            match cfg.get(n).and_then(|v| v.as_int()) {
                Some(v) => sum += v as f64,
                None => match cfg.get(n).and_then(|v| v.as_real()) {
                    Some(v) => sum += v,
                    None => return false,
                },
            }
        }
        // Lattice rounding after repair can perturb the sum by up to half a
        // step per participant; accept that slack.
        let slack = self.names.len() as f64;
        sum >= self.min_sum - slack && sum <= self.max_sum + slack
    }

    fn check_space(&self, space: &SearchSpace) -> Result<()> {
        indices(space, &self.names).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    fn chain_space() -> SearchSpace {
        SearchSpace::builder()
            .int("a", 0, 100, 1)
            .int("b", 0, 100, 1)
            .int("c", 0, 100, 1)
            .constraint(MonotoneChain::new(["a", "b", "c"]))
            .build()
            .unwrap()
    }

    #[test]
    fn monotone_repair_sorts() {
        let s = chain_space();
        let mut coords = vec![30.0, 10.0, 20.0];
        s.repair(&mut coords);
        assert_eq!(coords, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn monotone_repair_is_idempotent() {
        let s = chain_space();
        let mut coords = vec![55.5, 3.0, 41.0];
        s.repair(&mut coords);
        let once = coords.clone();
        s.repair(&mut coords);
        assert_eq!(coords, once);
    }

    #[test]
    fn monotone_is_satisfied_checks_order() {
        let s = chain_space();
        let good = s.project(&[5.0, 5.0, 9.0]);
        assert!(s.is_valid(&good));
        // Construct an invalid configuration by hand.
        let bad = s
            .configuration(vec![
                crate::value::ParamValue::Int(9),
                crate::value::ParamValue::Int(5),
                crate::value::ParamValue::Int(7),
            ])
            .unwrap();
        assert!(!s.is_valid(&bad));
    }

    #[test]
    fn unknown_name_fails_at_build() {
        let err = SearchSpace::builder()
            .int("a", 0, 1, 1)
            .constraint(MonotoneChain::new(["a", "zz"]))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn sum_bound_scales_down() {
        let s = SearchSpace::builder()
            .int("r1", 0, 100, 1)
            .int("r2", 0, 100, 1)
            .constraint(SumBound::exact(["r1", "r2"], 100.0))
            .build()
            .unwrap();
        let cfg = s.project(&[80.0, 80.0]);
        let sum = cfg.int("r1").unwrap() + cfg.int("r2").unwrap();
        assert!((sum - 100).abs() <= 2, "sum={sum}");
        assert!(s.is_valid(&cfg));
    }

    #[test]
    fn sum_bound_scales_up_and_handles_zero() {
        let s = SearchSpace::builder()
            .int("r1", 0, 100, 1)
            .int("r2", 0, 100, 1)
            .constraint(SumBound::exact(["r1", "r2"], 60.0))
            .build()
            .unwrap();
        let cfg = s.project(&[10.0, 20.0]);
        let sum = cfg.int("r1").unwrap() + cfg.int("r2").unwrap();
        assert!((sum - 60).abs() <= 2, "sum={sum}");
        let zero = s.project(&[0.0, 0.0]);
        let sum0 = zero.int("r1").unwrap() + zero.int("r2").unwrap();
        assert!((sum0 - 60).abs() <= 2, "sum0={sum0}");
    }

    #[test]
    fn sum_bound_leaves_feasible_points_alone() {
        let s = SearchSpace::builder()
            .int("r1", 0, 100, 1)
            .int("r2", 0, 100, 1)
            .constraint(SumBound::new(["r1", "r2"], 0.0, 150.0))
            .build()
            .unwrap();
        let cfg = s.project(&[40.0, 50.0]);
        assert_eq!(cfg.int("r1"), Some(40));
        assert_eq!(cfg.int("r2"), Some(50));
    }
}

//! Dependent-variable constraints.
//!
//! The paper (§II footnote 2) notes that dependent tunable variables are
//! handled with the techniques of the authors' SC'04 work ("Using Information
//! from Prior Runs to Improve Automated Tuning Systems"): instead of letting
//! the simplex wander into infeasible corners, dependent values are *repaired*
//! in the continuous embedding so the search effectively moves in a feasible
//! subspace. The canonical example in this paper is the PETSc matrix
//! decomposition, where partition boundaries must form a non-decreasing chain.

use crate::error::Result;
use crate::param::Param;
use crate::space::{Configuration, SearchSpace};
use std::fmt::Debug;

/// Machine-readable description of a constraint, consumed by the
/// search-space compiler ([`crate::space_compile`]).
///
/// A spec lets the compiler reason about the constraint *without evaluating
/// it*: tighten per-dimension bounds, prune provably-dead subtrees during
/// enumeration, and fold a canonical token into the space fingerprint. A
/// constraint that cannot (or does not want to) describe itself returns
/// [`ConstraintSpec::Opaque`]; the compiler then falls back to calling
/// [`Constraint::is_satisfied`] on every fully-assigned lattice point, which
/// is always correct, just slower.
///
/// Contract: the spec must accept *exactly* the configurations that
/// [`Constraint::is_satisfied`] accepts (it is an alternative encoding of
/// the same predicate, not an approximation). The equivalence is
/// property-tested in `tests/space_compile_props.rs`.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintSpec {
    /// No machine-readable form; check full points via `is_satisfied`.
    Opaque,
    /// The named dimensions (by index into the space's parameter list, in
    /// constraint order) must form a non-decreasing chain.
    Chain(Vec<usize>),
    /// The values of the dimensions must sum into `[min, max]` (any
    /// acceptance slack already folded into the bounds).
    Sum {
        /// Participating dimensions, by index, in constraint order.
        dims: Vec<usize>,
        /// Lower acceptance bound (slack included).
        min: f64,
        /// Upper acceptance bound (slack included).
        max: f64,
    },
    /// The constraint can never be satisfied on this space (e.g. a sum over
    /// a categorical dimension, which `is_satisfied` always rejects).
    Unsatisfiable,
}

impl ConstraintSpec {
    /// Canonical token folded (order-insensitively) into
    /// [`space_fingerprint`](crate::store::space_fingerprint).
    /// `None` for [`Opaque`](Self::Opaque): opaque constraints stay outside
    /// the fingerprint, exactly as all constraints were before the space
    /// compiler existed.
    pub fn fingerprint_token(&self) -> Option<String> {
        match self {
            ConstraintSpec::Opaque => None,
            ConstraintSpec::Chain(dims) => {
                let idx: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                Some(format!("chain:{}", idx.join(",")))
            }
            ConstraintSpec::Sum { dims, min, max } => {
                let idx: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
                Some(format!(
                    "sum:{}:{:016x}:{:016x}",
                    idx.join(","),
                    min.to_bits(),
                    max.to_bits()
                ))
            }
            ConstraintSpec::Unsatisfiable => Some("unsat".to_string()),
        }
    }
}

/// A repairable relation between parameters of a [`SearchSpace`].
pub trait Constraint: Send + Sync + Debug {
    /// Mutate a continuous point so that it satisfies the constraint.
    /// Called before lattice projection; must be idempotent.
    fn repair(&self, space: &SearchSpace, coords: &mut [f64]);

    /// Whether a projected configuration satisfies the constraint.
    fn is_satisfied(&self, space: &SearchSpace, cfg: &Configuration) -> bool;

    /// Validate that the constraint's parameter references exist in the
    /// space. Called once at space construction.
    fn check_space(&self, space: &SearchSpace) -> Result<()>;

    /// Machine-readable description for the search-space compiler; must
    /// accept exactly the configurations `is_satisfied` accepts. The
    /// default is [`ConstraintSpec::Opaque`] (always correct).
    fn spec(&self, _space: &SearchSpace) -> ConstraintSpec {
        ConstraintSpec::Opaque
    }
}

fn indices(space: &SearchSpace, names: &[String]) -> Result<Vec<usize>> {
    names
        .iter()
        .map(|n| {
            space
                .index_of(n)
                .ok_or_else(|| crate::error::HarmonyError::UnknownParam(n.clone()))
        })
        .collect()
}

/// Requires the named parameters to form a non-decreasing chain
/// `p1 ≤ p2 ≤ … ≤ pk` (e.g. partition boundaries in a matrix decomposition).
///
/// Repair sorts the involved coordinates in place, which is the closest
/// feasible chain under permutation distance and keeps the simplex volume
/// intact.
#[derive(Debug, Clone)]
pub struct MonotoneChain {
    names: Vec<String>,
}

impl MonotoneChain {
    /// Build a chain constraint over parameters in the given order.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        MonotoneChain {
            names: names.into_iter().map(Into::into).collect(),
        }
    }
}

impl Constraint for MonotoneChain {
    fn repair(&self, space: &SearchSpace, coords: &mut [f64]) {
        let idx = match indices(space, &self.names) {
            Ok(i) => i,
            Err(_) => return,
        };
        let mut vals: Vec<f64> = idx.iter().map(|&i| coords[i]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for (&i, v) in idx.iter().zip(vals) {
            coords[i] = v;
        }
    }

    fn is_satisfied(&self, _space: &SearchSpace, cfg: &Configuration) -> bool {
        let mut prev = f64::NEG_INFINITY;
        for n in &self.names {
            let v = match cfg.get(n) {
                Some(v) => v.as_int().map(|i| i as f64).or(v.as_real()),
                None => return false,
            };
            match v {
                Some(v) if v >= prev => prev = v,
                _ => return false,
            }
        }
        true
    }

    fn check_space(&self, space: &SearchSpace) -> Result<()> {
        indices(space, &self.names).map(|_| ())
    }

    fn spec(&self, space: &SearchSpace) -> ConstraintSpec {
        let idx = match indices(space, &self.names) {
            Ok(i) => i,
            Err(_) => return ConstraintSpec::Opaque,
        };
        // `is_satisfied` reads members as int-or-real and rejects anything
        // else, so a chain over a categorical dimension never holds.
        if idx
            .iter()
            .any(|&i| matches!(space.params()[i], Param::Enum { .. }))
        {
            return ConstraintSpec::Unsatisfiable;
        }
        ConstraintSpec::Chain(idx)
    }
}

/// Requires the sum of the named integer parameters to stay within
/// `[min_sum, max_sum]`; used for distributions that must add up to a total
/// (e.g. "rows per processor" summing to the matrix size).
///
/// Repair rescales all involved coordinates proportionally towards the
/// nearest bound.
#[derive(Debug, Clone)]
pub struct SumBound {
    names: Vec<String>,
    min_sum: f64,
    max_sum: f64,
}

impl SumBound {
    /// Build a sum constraint over the named parameters.
    pub fn new<I, S>(names: I, min_sum: f64, max_sum: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SumBound {
            names: names.into_iter().map(Into::into).collect(),
            min_sum,
            max_sum,
        }
    }

    /// Exact-sum convenience: `min_sum == max_sum == total`.
    pub fn exact<I, S>(names: I, total: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::new(names, total, total)
    }

    /// Acceptance slack: how far lattice projection can move the sum of a
    /// repaired (continuous, in-bounds) point.
    ///
    /// Each integer participant rounds to its nearest lattice point, i.e. by
    /// up to `step/2` — or up to a full `step` when the dimension's `max` is
    /// off-lattice and the snap-down kicks in. Real participants do not
    /// round. The tiny constant absorbs `f64` accumulation error on
    /// exact-sum constraints over real dimensions.
    fn slack(&self, space: &SearchSpace) -> f64 {
        let mut slack = 1e-9;
        for n in &self.names {
            let Some(i) = space.index_of(n) else { continue };
            match &space.params()[i] {
                Param::Int { min, max, step, .. } => {
                    slack += if (max - min) % step == 0 {
                        *step as f64 / 2.0
                    } else {
                        *step as f64
                    };
                }
                Param::Real { .. } => {}
                // Enums make the constraint unsatisfiable anyway.
                Param::Enum { .. } => slack += 0.5,
            }
        }
        slack
    }
}

impl Constraint for SumBound {
    fn repair(&self, space: &SearchSpace, coords: &mut [f64]) {
        let idx = match indices(space, &self.names) {
            Ok(i) => i,
            Err(_) => return,
        };
        let sum: f64 = idx.iter().map(|&i| coords[i].max(0.0)).sum();
        let target = if sum < self.min_sum {
            self.min_sum
        } else if sum > self.max_sum {
            self.max_sum
        } else {
            return;
        };
        if sum <= f64::EPSILON {
            // Degenerate all-zero point: distribute the target evenly.
            let share = target / idx.len() as f64;
            for &i in &idx {
                coords[i] = share;
            }
            return;
        }
        let scale = target / sum;
        for &i in &idx {
            coords[i] = coords[i].max(0.0) * scale;
        }
    }

    fn is_satisfied(&self, space: &SearchSpace, cfg: &Configuration) -> bool {
        let mut sum = 0.0;
        for n in &self.names {
            match cfg.get(n).and_then(|v| v.as_int()) {
                Some(v) => sum += v as f64,
                None => match cfg.get(n).and_then(|v| v.as_real()) {
                    Some(v) => sum += v,
                    None => return false,
                },
            }
        }
        // Lattice rounding after repair perturbs the sum by up to the
        // step-aware slack (a step-10 participant moves by up to ±5, not
        // ±1); accept exactly that much.
        let slack = self.slack(space);
        sum >= self.min_sum - slack && sum <= self.max_sum + slack
    }

    fn check_space(&self, space: &SearchSpace) -> Result<()> {
        indices(space, &self.names).map(|_| ())
    }

    fn spec(&self, space: &SearchSpace) -> ConstraintSpec {
        let idx = match indices(space, &self.names) {
            Ok(i) => i,
            Err(_) => return ConstraintSpec::Opaque,
        };
        // `is_satisfied` reads participants as int-or-real and rejects
        // anything else: a sum over a categorical dimension never holds.
        if idx
            .iter()
            .any(|&i| matches!(space.params()[i], Param::Enum { .. }))
        {
            return ConstraintSpec::Unsatisfiable;
        }
        let slack = self.slack(space);
        ConstraintSpec::Sum {
            dims: idx,
            min: self.min_sum - slack,
            max: self.max_sum + slack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    fn chain_space() -> SearchSpace {
        SearchSpace::builder()
            .int("a", 0, 100, 1)
            .int("b", 0, 100, 1)
            .int("c", 0, 100, 1)
            .constraint(MonotoneChain::new(["a", "b", "c"]))
            .build()
            .unwrap()
    }

    #[test]
    fn monotone_repair_sorts() {
        let s = chain_space();
        let mut coords = vec![30.0, 10.0, 20.0];
        s.repair(&mut coords);
        assert_eq!(coords, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn monotone_repair_is_idempotent() {
        let s = chain_space();
        let mut coords = vec![55.5, 3.0, 41.0];
        s.repair(&mut coords);
        let once = coords.clone();
        s.repair(&mut coords);
        assert_eq!(coords, once);
    }

    #[test]
    fn monotone_is_satisfied_checks_order() {
        let s = chain_space();
        let good = s.project(&[5.0, 5.0, 9.0]);
        assert!(s.is_valid(&good));
        // Construct an invalid configuration by hand.
        let bad = s
            .configuration(vec![
                crate::value::ParamValue::Int(9),
                crate::value::ParamValue::Int(5),
                crate::value::ParamValue::Int(7),
            ])
            .unwrap();
        assert!(!s.is_valid(&bad));
    }

    #[test]
    fn unknown_name_fails_at_build() {
        let err = SearchSpace::builder()
            .int("a", 0, 1, 1)
            .constraint(MonotoneChain::new(["a", "zz"]))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn sum_bound_scales_down() {
        let s = SearchSpace::builder()
            .int("r1", 0, 100, 1)
            .int("r2", 0, 100, 1)
            .constraint(SumBound::exact(["r1", "r2"], 100.0))
            .build()
            .unwrap();
        let cfg = s.project(&[80.0, 80.0]);
        let sum = cfg.int("r1").unwrap() + cfg.int("r2").unwrap();
        assert!((sum - 100).abs() <= 2, "sum={sum}");
        assert!(s.is_valid(&cfg));
    }

    #[test]
    fn sum_bound_scales_up_and_handles_zero() {
        let s = SearchSpace::builder()
            .int("r1", 0, 100, 1)
            .int("r2", 0, 100, 1)
            .constraint(SumBound::exact(["r1", "r2"], 60.0))
            .build()
            .unwrap();
        let cfg = s.project(&[10.0, 20.0]);
        let sum = cfg.int("r1").unwrap() + cfg.int("r2").unwrap();
        assert!((sum - 60).abs() <= 2, "sum={sum}");
        let zero = s.project(&[0.0, 0.0]);
        let sum0 = zero.int("r1").unwrap() + zero.int("r2").unwrap();
        assert!((sum0 - 60).abs() <= 2, "sum0={sum0}");
    }

    #[test]
    fn sum_bound_slack_accounts_for_step_sizes() {
        // Step-10 participants round by up to ±5 each after projection; the
        // old ±1-per-participant slack rejected such valid repaired points.
        let s = SearchSpace::builder()
            .int("r1", 0, 100, 10)
            .int("r2", 0, 100, 10)
            .constraint(SumBound::exact(["r1", "r2"], 95.0))
            .build()
            .unwrap();
        // 50 + 40 = 90: five off the exact target, i.e. exactly the rounding
        // a step-10 lattice introduces. Must be accepted.
        let rounded = s
            .configuration(vec![
                crate::value::ParamValue::Int(50),
                crate::value::ParamValue::Int(40),
            ])
            .unwrap();
        assert!(
            s.is_valid(&rounded),
            "step-sized rounding must be tolerated"
        );
        // And every projected (repaired) point must of course be valid.
        let projected = s.project(&[50.0, 45.0]);
        assert!(s.is_valid(&projected), "{projected}");
        // 50 + 20 = 70 is far beyond any rounding explanation: rejected.
        let far = s
            .configuration(vec![
                crate::value::ParamValue::Int(50),
                crate::value::ParamValue::Int(20),
            ])
            .unwrap();
        assert!(!s.is_valid(&far));
    }

    #[test]
    fn specs_describe_the_constraints() {
        let s = chain_space();
        assert_eq!(
            s.constraints()[0].spec(&s),
            ConstraintSpec::Chain(vec![0, 1, 2])
        );
        let s = SearchSpace::builder()
            .int("r1", 0, 10, 1)
            .int("r2", 0, 10, 1)
            .constraint(SumBound::new(["r1", "r2"], 3.0, 12.0))
            .build()
            .unwrap();
        match s.constraints()[0].spec(&s) {
            ConstraintSpec::Sum { dims, min, max } => {
                assert_eq!(dims, vec![0, 1]);
                assert!(min < 3.0 && min > 1.9, "slack-widened lower bound");
                assert!(max > 12.0 && max < 13.1, "slack-widened upper bound");
            }
            other => panic!("expected a sum spec, got {other:?}"),
        }
        // Constraints over categorical dimensions can never hold.
        let s = SearchSpace::builder()
            .enumeration("mode", ["a", "b"])
            .int("n", 0, 5, 1)
            .constraint(MonotoneChain::new(["mode", "n"]))
            .build()
            .unwrap();
        assert_eq!(s.constraints()[0].spec(&s), ConstraintSpec::Unsatisfiable);
    }

    #[test]
    fn fingerprint_tokens_are_canonical() {
        assert_eq!(
            ConstraintSpec::Chain(vec![0, 2])
                .fingerprint_token()
                .unwrap(),
            "chain:0,2"
        );
        assert_eq!(ConstraintSpec::Opaque.fingerprint_token(), None);
        let a = ConstraintSpec::Sum {
            dims: vec![1, 3],
            min: 2.0,
            max: 8.0,
        };
        assert_eq!(a.fingerprint_token(), a.clone().fingerprint_token());
        assert_ne!(
            a.fingerprint_token(),
            ConstraintSpec::Sum {
                dims: vec![1, 3],
                min: 2.0,
                max: 9.0,
            }
            .fingerprint_token()
        );
    }

    #[test]
    fn sum_bound_leaves_feasible_points_alone() {
        let s = SearchSpace::builder()
            .int("r1", 0, 100, 1)
            .int("r2", 0, 100, 1)
            .constraint(SumBound::new(["r1", "r2"], 0.0, 150.0))
            .build()
            .unwrap();
        let cfg = s.project(&[40.0, 50.0]);
        assert_eq!(cfg.int("r1"), Some(40));
        assert_eq!(cfg.int("r2"), Some(50));
    }
}

//! Portable readiness polling for the nonblocking TCP front-end.
//!
//! The event loop ([`super::event_loop`]) needs one primitive: "block until
//! any of these sockets can make progress". The portable floor for that is
//! POSIX `poll(2)` — present on every unix since the 90s, no kernel object
//! to manage, and O(n) scans are irrelevant at the few thousand descriptors
//! per loop thread this server multiplexes. The syscall is declared here
//! directly (`extern "C"`) because the workspace builds offline against
//! vendored crates only; process-wide libc is linked by std anyway, so this
//! adds zero dependencies. `epoll`/`kqueue` backends can slot in behind the
//! same [`ReadinessPoller`] trait later without touching the event loop.
//!
//! On non-unix targets a degraded poller is provided that reports every
//! registered source ready after a short sleep; the event loop's sockets
//! are nonblocking, so correctness is preserved (reads/writes simply return
//! `WouldBlock`) at the cost of busy-polling.

use std::io;
use std::time::Duration;

/// What a registered descriptor wants to be woken for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or EOF/error pending).
    pub read: bool,
    /// Wake when the descriptor can accept writes.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    /// No interest: the descriptor stays registered (errors still surface)
    /// but neither direction wakes the loop. This is how backpressure
    /// parks a connection.
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// What one descriptor reported after a poll.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Bytes (or EOF) are readable without blocking.
    pub readable: bool,
    /// Writes can make progress without blocking.
    pub writable: bool,
    /// The peer hung up or the descriptor is in an error state; the owner
    /// should read to drain remaining bytes and then close.
    pub hangup: bool,
}

impl Readiness {
    /// Whether anything at all was reported.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.hangup
    }
}

/// Raw descriptor handed to a poller. On unix this is the real fd; the
/// degraded non-unix poller never inspects it.
#[cfg(unix)]
pub type PollFd = std::os::unix::io::RawFd;
/// Raw descriptor handed to a poller (opaque off-unix).
#[cfg(not(unix))]
pub type PollFd = u64;

/// The descriptor of a pollable socket.
#[cfg(unix)]
pub fn poll_fd<T: std::os::unix::io::AsRawFd>(source: &T) -> PollFd {
    source.as_raw_fd()
}

/// The descriptor of a pollable socket (opaque off-unix).
#[cfg(not(unix))]
pub fn poll_fd<T>(_source: &T) -> PollFd {
    0
}

/// Blocks until registered descriptors are ready. Implementations must be
/// level-triggered: a descriptor that stays readable keeps reporting
/// readable on every call.
pub trait ReadinessPoller: Send {
    /// Wait up to `timeout` for readiness on `sources`. `out` is resized to
    /// `sources.len()` and filled positionally; returns how many sources
    /// reported anything. A return of `0` means the timeout elapsed.
    fn wait(
        &mut self,
        sources: &[(PollFd, Interest)],
        out: &mut Vec<Readiness>,
        timeout: Duration,
    ) -> io::Result<usize>;
}

#[cfg(unix)]
mod sys {
    //! Hand-declared `poll(2)` ABI. Constant values are identical across
    //! Linux and the BSDs (macOS included); the one genuine divergence is
    //! the width of `nfds_t`.
    #![allow(non_camel_case_types)]

    #[repr(C)]
    pub struct pollfd {
        pub fd: std::os::unix::io::RawFd,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "linux")]
    pub type nfds_t = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    pub type nfds_t = u32;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: std::ffi::c_int) -> std::ffi::c_int;
    }
}

/// `poll(2)`-backed poller. One per event-loop thread; the `pollfd` scratch
/// buffer is reused across calls so steady-state polling allocates nothing.
#[derive(Default)]
pub struct PollPoller {
    #[cfg(unix)]
    buf: Vec<sys::pollfd>,
}

impl PollPoller {
    /// A fresh poller with an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(unix)]
impl ReadinessPoller for PollPoller {
    fn wait(
        &mut self,
        sources: &[(PollFd, Interest)],
        out: &mut Vec<Readiness>,
        timeout: Duration,
    ) -> io::Result<usize> {
        self.buf.clear();
        for (fd, interest) in sources {
            let mut events = 0i16;
            if interest.read {
                events |= sys::POLLIN;
            }
            if interest.write {
                events |= sys::POLLOUT;
            }
            self.buf.push(sys::pollfd {
                fd: *fd,
                events,
                revents: 0,
            });
        }
        // Saturate instead of truncating: a u64 millisecond count does not
        // fit c_int, and "very long" and "forever minus epsilon" are the
        // same thing to an event loop that re-polls anyway.
        let millis = timeout.as_millis().min(i32::MAX as u128) as std::ffi::c_int;
        let rc = loop {
            let rc =
                unsafe { sys::poll(self.buf.as_mut_ptr(), self.buf.len() as sys::nfds_t, millis) };
            if rc >= 0 {
                break rc;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry. Slightly overshooting the timeout is fine.
        };
        out.clear();
        out.extend(self.buf.iter().map(|p| Readiness {
            readable: p.revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
            writable: p.revents & (sys::POLLOUT | sys::POLLERR) != 0,
            hangup: p.revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
        }));
        Ok(rc as usize)
    }
}

#[cfg(not(unix))]
impl ReadinessPoller for PollPoller {
    fn wait(
        &mut self,
        sources: &[(PollFd, Interest)],
        out: &mut Vec<Readiness>,
        timeout: Duration,
    ) -> io::Result<usize> {
        // Degraded portable fallback: claim everything ready and let the
        // nonblocking sockets sort truth from fiction via WouldBlock. The
        // short sleep keeps the busy-poll civil.
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        out.clear();
        out.extend(sources.iter().map(|(_, interest)| Readiness {
            readable: interest.read,
            writable: interest.write,
            hangup: false,
        }));
        Ok(out.iter().filter(|r| r.any()).count())
    }
}

#[cfg(unix)]
type WakePipe = std::os::unix::net::UnixStream;
#[cfg(not(unix))]
type WakePipe = std::net::TcpStream;

/// Cross-thread wakeup for a blocked poller: shard workers completing a
/// reply (or the accept thread handing over a fresh connection) call
/// [`Waker::wake`], which makes the paired [`WakeReceiver`] readable and
/// pops the owning loop out of `poll`. Cheap self-pipe, no signals.
pub struct Waker {
    tx: WakePipe,
}

impl Clone for Waker {
    fn clone(&self) -> Self {
        Waker {
            tx: self.tx.try_clone().expect("clone waker pipe"),
        }
    }
}

impl Waker {
    /// Make the paired receiver readable. Idempotent while un-drained: once
    /// the pipe's buffer is full the kernel reports `WouldBlock`, which
    /// means a wakeup is already pending — exactly the desired semantics.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// The readable end of a [`Waker`] pair; register [`fd`](Self::fd) with
/// read interest in the owning loop's poll set.
pub struct WakeReceiver {
    rx: WakePipe,
}

impl WakeReceiver {
    /// Descriptor to register in the poll set.
    pub fn fd(&self) -> PollFd {
        poll_fd(&self.rx)
    }

    /// Consume all pending wakeups (call once per loop iteration).
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Build a connected waker pair, both ends nonblocking.
pub fn waker_pair() -> io::Result<(Waker, WakeReceiver)> {
    #[cfg(unix)]
    let (tx, rx) = WakePipe::pair()?;
    #[cfg(not(unix))]
    let (tx, rx) = {
        // No socketpair off-unix: a loopback TCP pair behaves identically.
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let tx = std::net::TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        (tx, rx)
    };
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_times_out_with_nothing_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut poller = PollPoller::new();
        let mut out = Vec::new();
        let t0 = std::time::Instant::now();
        let n = poller
            .wait(
                &[(poll_fd(&server), Interest::READ)],
                &mut out,
                Duration::from_millis(30),
            )
            .unwrap();
        // Degraded non-unix poller legitimately reports ready; on unix an
        // idle socket must time out.
        if cfg!(unix) {
            assert_eq!(n, 0);
            assert!(t0.elapsed() >= Duration::from_millis(25));
            assert!(!out[0].any(), "{:?}", out[0]);
        }
        drop(client);
    }

    #[test]
    fn poller_reports_readable_after_a_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut poller = PollPoller::new();
        let mut out = Vec::new();
        let n = poller
            .wait(
                &[(poll_fd(&server), Interest::READ)],
                &mut out,
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(n >= 1);
        assert!(out[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn no_interest_never_wakes_for_data() {
        if !cfg!(unix) {
            return; // degraded poller deliberately over-reports
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"ping").unwrap();
        let mut poller = PollPoller::new();
        let mut out = Vec::new();
        let n = poller
            .wait(
                &[(poll_fd(&server), Interest::NONE)],
                &mut out,
                Duration::from_millis(20),
            )
            .unwrap();
        assert_eq!(n, 0, "parked descriptor must not report plain readability");
    }

    #[test]
    fn waker_pops_a_blocked_poll_and_drains() {
        let (waker, receiver) = waker_pair().unwrap();
        let remote = waker.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // coalesces with the first
        });
        let mut poller = PollPoller::new();
        let mut out = Vec::new();
        let n = poller
            .wait(
                &[(receiver.fd(), Interest::READ)],
                &mut out,
                Duration::from_secs(5),
            )
            .unwrap();
        assert!(n >= 1);
        assert!(out[0].readable);
        receiver.drain();
        // Drained: an immediate re-poll finds nothing (unix only; the
        // degraded poller always reports).
        if cfg!(unix) {
            let n = poller
                .wait(
                    &[(receiver.fd(), Interest::READ)],
                    &mut out,
                    Duration::from_millis(10),
                )
                .unwrap();
            assert_eq!(n, 0);
        }
        h.join().unwrap();
    }

    #[test]
    fn hangup_is_reported_when_the_peer_closes() {
        if !cfg!(unix) {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        drop(client);
        let mut poller = PollPoller::new();
        let mut out = Vec::new();
        let n = poller
            .wait(
                &[(poll_fd(&server), Interest::READ)],
                &mut out,
                Duration::from_secs(2),
            )
            .unwrap();
        assert!(n >= 1);
        // A closed peer shows up as readable (EOF) and/or hangup; either
        // way the loop's read path discovers the close.
        assert!(out[0].readable || out[0].hangup, "{:?}", out[0]);
    }
}

//! Nonblocking readiness event loop: the scalable TCP front-end.
//!
//! The thread-per-connection transport burns one OS thread (stack, wakeup
//! churn, scheduler pressure) per tuning client, which caps a server at a
//! few dozen clients — nowhere near the paper's premise of one Harmony
//! server steering thousands of concurrently reporting workers. This
//! module multiplexes instead: a small pool of loop threads, each owning
//! thousands of nonblocking connections and a [`ReadinessPoller`]
//! (`poll(2)` on unix; see [`super::poll`] for why that is the portable
//! floor and how `epoll` slots in behind the same trait).
//!
//! # Per-connection state machine
//!
//! Every connection carries an incremental [`FrameDecoder`] (partial reads
//! are buffered until a full newline-terminated frame is present; a frame
//! that outgrows the cap is a clean protocol error, not a hang) and a
//! bounded write buffer. Exactly one request per connection is in flight
//! toward the shard pool at a time — the same serialization the blocking
//! transport got for free from its one-thread-one-loop shape — which is
//! what keeps event-loop tuning trajectories bit-identical to
//! thread-per-connection runs. Replies come back through a
//! [`CompletionSink`]: the shard worker enqueues the reply on the owning
//! loop's completion queue and pops its poller with a [`Waker`] instead of
//! the loop parking in a blocking `recv`.
//!
//! # Backpressure and eviction
//!
//! A connection whose write buffer is past its cap stops being polled for
//! read — a peer that will not drain its replies cannot force the server
//! to buffer unboundedly, and the kernel's socket buffers push back on the
//! peer's sends. Connections silent past the configured idle timeout are
//! reaped exactly like a dead socket: a `Leave` is synthesised so the
//! session requeues their outstanding trials through the existing eviction
//! path. Over-capacity connections get the protocol's retryable
//! `ServerBusy` refusal written from this same nonblocking write path —
//! no thread is ever spawned per refusal.

use super::poll::{
    poll_fd, waker_pair, Interest, PollFd, PollPoller, Readiness, ReadinessPoller, WakeReceiver,
    Waker,
};
use super::protocol::{
    CompletionSink, Envelope, FrameDecoder, Reply, ReplySink, Request, MAX_FRAME_LEN,
};
use super::ServerBus;
use crate::telemetry::{Counter, Latency, Telemetry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an over-capacity connection may take to send the first request
/// its refusal answers (the blocking transport used the same bound as a
/// socket read timeout).
const REFUSE_DEADLINE: Duration = Duration::from_secs(5);

/// Poll timeout when no deadline is nearer: long enough to stay off the
/// CPU, short enough that a missed wakeup (there are none known) would
/// only ever stall progress briefly.
const IDLE_TICK: Duration = Duration::from_millis(500);

/// Knobs of the readiness event loop.
#[derive(Debug, Clone)]
pub struct EventLoopConfig {
    /// Loop threads connections are spread across. `0` (default) sizes to
    /// the host: half the available cores, clamped to `1..=4` — each loop
    /// is I/O-bound bookkeeping, so a few go a long way even at thousands
    /// of connections.
    pub loop_threads: usize,
    /// Reap connections with no inbound traffic for longer than this,
    /// synthesising a `Leave` (outstanding trials requeue through the
    /// session's existing eviction path). `None` (default) disables
    /// reaping, matching the blocking transport's behaviour.
    pub idle_timeout: Option<Duration>,
    /// Per-frame byte ceiling for inbound requests (see
    /// [`MAX_FRAME_LEN`]).
    pub max_frame_len: usize,
    /// Pause reading from a connection while more than this many reply
    /// bytes are queued for it unsent.
    pub write_buffer_cap: usize,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            loop_threads: 0,
            idle_timeout: None,
            max_frame_len: MAX_FRAME_LEN,
            write_buffer_cap: 256 * 1024,
        }
    }
}

impl EventLoopConfig {
    fn resolved_threads(&self) -> usize {
        if self.loop_threads > 0 {
            return self.loop_threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get() / 2)
            .unwrap_or(1)
            .clamp(1, 4)
    }
}

/// Hands accepted sockets to loop threads round-robin. Cloneable so the
/// accept thread can own one while the pool keeps the join handles.
#[derive(Clone)]
pub(crate) struct Dispatcher {
    lanes: Arc<Vec<(Sender<TcpStream>, Waker)>>,
    next: Arc<AtomicU64>,
}

impl Dispatcher {
    /// Queue `stream` on the next loop thread and wake it.
    pub(crate) fn dispatch(&self, stream: TcpStream) {
        let lane = (self.next.fetch_add(1, Ordering::Relaxed) as usize) % self.lanes.len();
        let (tx, waker) = &self.lanes[lane];
        if tx.send(stream).is_ok() {
            waker.wake();
        }
    }
}

/// A running pool of event-loop threads.
pub(crate) struct EventLoopPool {
    dispatcher: Dispatcher,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl EventLoopPool {
    /// Spawn the loop threads.
    pub(crate) fn start(
        bus: ServerBus,
        cfg: EventLoopConfig,
        max_connections: usize,
        telemetry: Telemetry,
        active: Arc<AtomicUsize>,
    ) -> std::io::Result<EventLoopPool> {
        let threads = cfg.resolved_threads();
        let stop = Arc::new(AtomicBool::new(false));
        let mut lanes = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = unbounded::<TcpStream>();
            let (waker, wake_rx) = waker_pair()?;
            let shared = Arc::new(LoopShared {
                completions: Mutex::new(Vec::new()),
                waker: waker.clone(),
            });
            let worker = LoopWorker {
                bus: bus.clone(),
                cfg: cfg.clone(),
                max_connections,
                telemetry: telemetry.clone(),
                active: Arc::clone(&active),
                incoming: rx,
                shared,
                wake_rx,
                stop: Arc::clone(&stop),
            };
            let handle = std::thread::Builder::new()
                .name(format!("harmony-evloop-{i}"))
                .spawn(move || worker.run())?;
            lanes.push((tx, waker));
            handles.push(handle);
        }
        Ok(EventLoopPool {
            dispatcher: Dispatcher {
                lanes: Arc::new(lanes),
                next: Arc::new(AtomicU64::new(0)),
            },
            stop,
            handles,
        })
    }

    pub(crate) fn dispatcher(&self) -> Dispatcher {
        self.dispatcher.clone()
    }

    /// Stop every loop thread and wait for them; established connections
    /// are dropped (the adaptation controller is shutting down with us).
    pub(crate) fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for (_, waker) in self.dispatcher.lanes.iter() {
            waker.wake();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The completion queue one loop thread drains, handed to shard workers
/// inside [`ReplySink::Completion`].
struct LoopShared {
    completions: Mutex<Vec<(u64, Reply)>>,
    waker: Waker,
}

impl CompletionSink for LoopShared {
    fn complete(&self, token: u64, reply: Reply) {
        self.completions.lock().push((token, reply));
        self.waker.wake();
    }
}

/// Why a connection is being torn down (drives churn counters and the
/// `Leave` synthesis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Close {
    /// Peer closed (EOF, reset, write failure) or said a clean goodbye.
    Peer,
    /// Reaped by the idle timeout.
    Idle,
    /// Refusal completed (busy frame flushed, or the peer never asked).
    Refused,
    /// Internal failure (shard pool gone).
    Server,
}

/// Lifecycle of one multiplexed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Serving the protocol.
    Active,
    /// Over capacity: wait (bounded) for the first request, answer it with
    /// the retryable busy error, then flush and close.
    Refusing,
    /// Reply queued for a goodbye/refusal/frame-error; close once the
    /// write buffer drains.
    Closing,
}

/// One registered connection.
struct Conn {
    /// This connection's key in the loop's map; shard replies carry it
    /// back through the completion queue.
    token: u64,
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Serialized replies not yet written (consumed prefix tracked by
    /// `out_pos`, compacted lazily).
    out: Vec<u8>,
    out_pos: usize,
    client_id: u64,
    departed: bool,
    /// `Some(is_leave)` while a request is at the shard pool; the protocol
    /// is strictly request-reply per connection, so one is enough.
    in_flight: Option<bool>,
    /// Read side saw EOF; drain buffered frames, then close.
    eof: bool,
    /// The EOF remainder (a final frame with no newline) was processed.
    finished_tail: bool,
    last_activity: Instant,
    phase: Phase,
    /// Holds one slot of the connection ceiling.
    counted: bool,
}

/// One event-loop thread: owns its connections outright; nothing here is
/// shared except the completion queue and the atomic connection count.
struct LoopWorker {
    bus: ServerBus,
    cfg: EventLoopConfig,
    max_connections: usize,
    telemetry: Telemetry,
    active: Arc<AtomicUsize>,
    incoming: Receiver<TcpStream>,
    shared: Arc<LoopShared>,
    wake_rx: WakeReceiver,
    stop: Arc<AtomicBool>,
}

impl LoopWorker {
    fn run(self) {
        let mut poller = PollPoller::new();
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token: u64 = 1;
        let mut sources: Vec<(PollFd, Interest)> = Vec::new();
        let mut tokens: Vec<u64> = Vec::new();
        let mut ready: Vec<Readiness> = Vec::new();
        let mut closed: Vec<(u64, Close)> = Vec::new();
        // Iteration latency measures the work between polls, not the wait.
        let mut work_started = Instant::now();

        loop {
            if self.stop.load(Ordering::SeqCst) {
                for (_, conn) in conns.drain() {
                    if conn.counted {
                        self.active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                return;
            }

            // Adopt connections the accept thread handed over.
            while let Ok(stream) = self.incoming.try_recv() {
                if let Some(conn) = self.adopt(stream, next_token) {
                    conns.insert(next_token, conn);
                    next_token += 1;
                }
            }

            // Route completed shard replies back onto their connections.
            let completions: Vec<(u64, Reply)> =
                std::mem::take(&mut *self.shared.completions.lock());
            for (token, reply) in completions {
                let Some(conn) = conns.get_mut(&token) else {
                    continue; // connection closed while the shard worked
                };
                conn.last_activity = Instant::now();
                let is_leave = conn.in_flight.take().unwrap_or(false);
                if is_leave && matches!(reply, Reply::Ok) {
                    conn.departed = true;
                }
                if let Reply::Registered { client_id, .. } = reply {
                    conn.client_id = client_id;
                    conn.departed = false;
                }
                queue_reply(&mut conn.out, &reply);
                // The reply may unblock the next buffered frame.
                if let Err(cause) = self.advance(conn) {
                    closed.push((token, cause));
                }
            }

            // Deadlines: idle reaping and the refusal wait bound.
            let now = Instant::now();
            for (&token, conn) in conns.iter_mut() {
                match conn.phase {
                    Phase::Refusing if now.duration_since(conn.last_activity) > REFUSE_DEADLINE => {
                        closed.push((token, Close::Refused));
                    }
                    Phase::Active => {
                        if let Some(idle) = self.cfg.idle_timeout {
                            if conn.in_flight.is_none()
                                && now.duration_since(conn.last_activity) > idle
                            {
                                closed.push((token, Close::Idle));
                            }
                        }
                    }
                    _ => {}
                }
            }
            self.reap(&mut conns, &mut closed);

            // Build the poll set: the waker first, then every connection.
            sources.clear();
            tokens.clear();
            sources.push((self.wake_rx.fd(), Interest::READ));
            for (&token, conn) in conns.iter() {
                sources.push((poll_fd(&conn.stream), self.interest_of(conn)));
                tokens.push(token);
            }

            let timeout = self.poll_timeout(&conns, now);
            self.telemetry
                .observe(Latency::EventLoopIteration, work_started.elapsed());
            let polled = poller.wait(&sources, &mut ready, timeout);
            work_started = Instant::now();
            let n = match polled {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("harmony-evloop: poll failed: {e}");
                    continue;
                }
            };
            if ready.first().is_some_and(|r| r.readable) {
                self.wake_rx.drain();
            }
            if n == 0 {
                continue; // timeout tick: deadlines re-checked above
            }

            for (idx, &token) in tokens.iter().enumerate() {
                let readiness = ready[idx + 1];
                if !readiness.any() {
                    continue;
                }
                let conn = conns.get_mut(&token).expect("token registered");
                match self.service(conn, readiness) {
                    Ok(()) => {}
                    Err(cause) => closed.push((token, cause)),
                }
            }
            self.reap(&mut conns, &mut closed);
        }
    }

    /// Take ownership of a fresh socket: claim a ceiling slot or put the
    /// connection on the nonblocking refusal path.
    fn adopt(&self, stream: TcpStream, token: u64) -> Option<Conn> {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return None;
        }
        let over_cap = self.active.fetch_add(1, Ordering::SeqCst) >= self.max_connections;
        let phase = if over_cap {
            self.active.fetch_sub(1, Ordering::SeqCst);
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".into());
            eprintln!(
                "harmony-evloop: refusing {peer}: at connection capacity ({})",
                self.max_connections
            );
            Phase::Refusing
        } else {
            self.telemetry.inc(Counter::ConnectionsAccepted);
            Phase::Active
        };
        Some(Conn {
            token,
            stream,
            decoder: FrameDecoder::new(self.cfg.max_frame_len),
            out: Vec::new(),
            out_pos: 0,
            client_id: 0,
            departed: false,
            in_flight: None,
            eof: false,
            finished_tail: false,
            last_activity: Instant::now(),
            phase,
            counted: !over_cap,
        })
    }

    /// What this connection should be polled for right now.
    fn interest_of(&self, conn: &Conn) -> Interest {
        let backlog = conn.out.len() - conn.out_pos;
        Interest {
            // Stop reading while a request is in flight (the protocol is
            // request-reply serial), after EOF, once closing, and while
            // the peer is not draining its replies (backpressure).
            read: !conn.eof
                && conn.phase != Phase::Closing
                && conn.in_flight.is_none()
                && backlog < self.cfg.write_buffer_cap,
            write: backlog > 0,
        }
    }

    /// The nearest deadline any connection is waiting on.
    fn poll_timeout(&self, conns: &HashMap<u64, Conn>, now: Instant) -> Duration {
        let mut timeout = IDLE_TICK;
        for conn in conns.values() {
            let deadline = match conn.phase {
                Phase::Refusing => Some(REFUSE_DEADLINE),
                Phase::Active if conn.in_flight.is_none() => self.cfg.idle_timeout,
                _ => None,
            };
            if let Some(d) = deadline {
                let elapsed = now.duration_since(conn.last_activity);
                let left = d.checked_sub(elapsed).unwrap_or(Duration::from_millis(1));
                timeout = timeout.min(left.max(Duration::from_millis(1)));
            }
        }
        timeout
    }

    /// React to readiness on one connection.
    fn service(&self, conn: &mut Conn, readiness: Readiness) -> Result<(), Close> {
        if readiness.readable {
            self.read_some(conn)?;
        }
        self.advance(conn)
    }

    /// Drain the kernel's receive buffer into the frame decoder.
    fn read_some(&self, conn: &mut Conn) -> Result<(), Close> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.decoder.extend(&buf[..n]);
                    // One request is in flight at a time; bytes beyond it
                    // stay buffered in the decoder, so stop pulling more
                    // once a frame boundary is plausible and let advance()
                    // decide. Keep reading only while the socket has data.
                    if n < buf.len() {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(Close::Peer),
            }
        }
    }

    /// Push the state machine as far as it can go without blocking: flush
    /// queued reply bytes, decode and act on buffered frames, flush again.
    fn advance(&self, conn: &mut Conn) -> Result<(), Close> {
        flush_out(conn)?;
        while conn.in_flight.is_none() && conn.phase != Phase::Closing {
            let frame = match conn.decoder.next_frame() {
                Ok(Some(frame)) => Some(frame),
                Ok(None) => {
                    // At EOF the blocking reader still yields an
                    // unterminated final line; mirror that exactly once.
                    if conn.eof && !conn.finished_tail {
                        conn.finished_tail = true;
                        conn.decoder.finish()
                    } else {
                        None
                    }
                }
                Err(e) => {
                    // Unframeable stream: tell the peer why, then close.
                    queue_reply(&mut conn.out, &Reply::err(format!("protocol error: {e}")));
                    conn.phase = Phase::Closing;
                    continue;
                }
            };
            let Some(frame) = frame else { break };
            if conn.phase == Phase::Refusing {
                // The refusal answers the peer's *first* request — writing
                // before reading would race the peer's in-flight send and
                // turn the error into a bare RST (see the blocking
                // transport's regression test).
                self.telemetry.inc(Counter::ConnectionsRefused);
                queue_reply(
                    &mut conn.out,
                    &Reply::busy(format!(
                        "server at connection capacity ({})",
                        self.max_connections
                    )),
                );
                conn.phase = Phase::Closing;
                continue;
            }
            if frame.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Request>(&frame) {
                Ok(Request::Shutdown) => {
                    // Connection-level goodbye; never forwarded (a remote
                    // client must not be able to kill the shared server).
                    queue_reply(&mut conn.out, &Reply::Ok);
                    conn.phase = Phase::Closing;
                }
                Ok(req) => {
                    let is_leave = matches!(req, Request::Leave);
                    let env = Envelope::with_sink(
                        conn.client_id,
                        req,
                        ReplySink::Completion {
                            sink: Arc::clone(&self.shared) as Arc<dyn CompletionSink>,
                            token: conn.token,
                        },
                    );
                    if self.bus.send(env).is_err() {
                        return Err(Close::Server);
                    }
                    conn.in_flight = Some(is_leave);
                }
                Err(e) => {
                    queue_reply(
                        &mut conn.out,
                        &Reply::err(format!("malformed request: {e}")),
                    );
                }
            }
        }
        flush_out(conn)?;
        if conn.phase == Phase::Closing && conn.out_pos == conn.out.len() {
            // Goodbye/refusal fully flushed.
            return Err(if conn.counted {
                Close::Peer
            } else {
                Close::Refused
            });
        }
        if conn.eof
            && conn.in_flight.is_none()
            && conn.finished_tail
            && conn.decoder.buffered() == 0
        {
            return Err(Close::Peer);
        }
        Ok(())
    }

    /// Tear down every connection queued for closing.
    fn reap(&self, conns: &mut HashMap<u64, Conn>, closed: &mut Vec<(u64, Close)>) {
        for (token, cause) in closed.drain(..) {
            let Some(conn) = conns.remove(&token) else {
                continue;
            };
            if conn.counted {
                self.active.fetch_sub(1, Ordering::SeqCst);
                match cause {
                    Close::Peer => self.telemetry.inc(Counter::ConnectionsClosedByPeer),
                    Close::Idle => self.telemetry.inc(Counter::ConnectionsEvictedIdle),
                    _ => {}
                }
            }
            if conn.client_id != 0 && !conn.departed {
                // The connection died with its client still a member:
                // requeue outstanding trials for the survivors. Nobody
                // waits for this reply.
                let _ = self.bus.send(Envelope::with_sink(
                    conn.client_id,
                    Request::Leave,
                    ReplySink::Discard,
                ));
            }
        }
    }
}

/// Serialize one reply frame onto a connection's write buffer.
fn queue_reply(out: &mut Vec<u8>, reply: &Reply) {
    let blob = serde_json::to_string(reply).expect("replies serialize");
    out.extend_from_slice(blob.as_bytes());
    out.push(b'\n');
}

/// Write as much buffered output as the socket accepts right now.
fn flush_out(conn: &mut Conn) -> Result<(), Close> {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(Close::Peer),
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(Close::Peer),
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > 64 * 1024 {
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    Ok(())
}

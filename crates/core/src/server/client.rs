//! Client-side API of the Harmony server.
//!
//! This is the Rust analogue of the ~10 lines of instrumentation the paper
//! adds to an application: connect, declare tunable variables, then
//! fetch/report inside the run loop. A client either *founds* a session
//! ([`HarmonyServer::connect`](super::HarmonyServer::connect)) or *attaches*
//! to one as an additional worker
//! ([`HarmonyServer::attach`](super::HarmonyServer::attach)) — attached
//! members share the founder's outstanding-trial queue, which is how a
//! crashed worker's trials get re-measured by its replacement.

use super::protocol::{Envelope, FetchedTrial, Reply, Request, StrategyKind, TrialReport};
use super::ServerBus;
use crate::error::{HarmonyError, Result};
use crate::history::History;
use crate::param::Param;
use crate::session::SessionOptions;
use crate::space::Configuration;
use crossbeam::channel::bounded;

/// The result of a [`HarmonyClient::fetch`].
#[derive(Debug, Clone)]
pub struct Fetched {
    /// Configuration to run next (or the final best when `finished`).
    pub config: Configuration,
    /// 1-based evaluation index.
    pub iteration: usize,
    /// True once tuning has stopped.
    pub finished: bool,
}

/// A connection from one application to the Harmony server.
///
/// Cloneable and sendable: an application may fetch from one thread and
/// report from another, though requests are processed one at a time.
#[derive(Clone)]
pub struct HarmonyClient {
    id: u64,
    session: u64,
    app: String,
    bus: ServerBus,
}

impl std::fmt::Debug for HarmonyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarmonyClient")
            .field("id", &self.id)
            .field("session", &self.session)
            .field("app", &self.app)
            .finish_non_exhaustive()
    }
}

/// Map a protocol error reply to the typed error split: retryable refusals
/// become [`HarmonyError::ServerBusy`], the rest are protocol violations.
pub(crate) fn reply_error(message: String, retryable: bool) -> HarmonyError {
    if retryable {
        HarmonyError::ServerBusy(message)
    } else {
        HarmonyError::Protocol(message)
    }
}

impl HarmonyClient {
    pub(crate) fn register(bus: ServerBus, app: String, tenant: String) -> Result<Self> {
        let reply = Self::call_raw(
            &bus,
            0,
            Request::Register {
                app: app.clone(),
                tenant,
            },
        )?;
        match reply {
            Reply::Registered { client_id, session } => Ok(HarmonyClient {
                id: client_id,
                session,
                app,
                bus,
            }),
            Reply::QuotaExceeded { tenant } => Err(HarmonyError::QuotaExceeded { tenant }),
            Reply::Error { message, retryable } => Err(reply_error(message, retryable)),
            _ => Err(HarmonyError::Protocol("unexpected reply".into())),
        }
    }

    pub(crate) fn attach(bus: ServerBus, session: u64, tenant: String) -> Result<Self> {
        let reply = Self::call_raw(&bus, 0, Request::Attach { session, tenant })?;
        match reply {
            Reply::Registered { client_id, session } => Ok(HarmonyClient {
                id: client_id,
                session,
                app: String::new(),
                bus,
            }),
            Reply::QuotaExceeded { tenant } => Err(HarmonyError::QuotaExceeded { tenant }),
            Reply::Error { message, retryable } => Err(reply_error(message, retryable)),
            _ => Err(HarmonyError::Protocol("unexpected reply".into())),
        }
    }

    fn call_raw(bus: &ServerBus, client: u64, req: Request) -> Result<Reply> {
        let (tx, rx) = bounded(1);
        bus.send(Envelope::new(client, req, tx))
            .map_err(|_| HarmonyError::Disconnected)?;
        rx.recv().map_err(|_| HarmonyError::Disconnected)
    }

    fn call(&self, req: Request) -> Result<Reply> {
        match Self::call_raw(&self.bus, self.id, req)? {
            Reply::QuotaExceeded { tenant } => Err(HarmonyError::QuotaExceeded { tenant }),
            Reply::Error { message, retryable } => Err(reply_error(message, retryable)),
            ok => Ok(ok),
        }
    }

    /// This client's id on the server.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session this client belongs to (equals [`id`](Self::id) for a
    /// founder). Pass it to [`HarmonyServer::attach`](super::HarmonyServer::attach)
    /// to add workers or rejoin after a crash.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The application label given at connect time (empty for an attached
    /// member — the label belongs to the founder).
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Declare a tunable parameter (before [`seal`](Self::seal)).
    pub fn add_param(&self, param: Param) -> Result<()> {
        self.call(Request::AddParam { param }).map(|_| ())
    }

    /// Declare a monotone-chain dependency between parameters.
    pub fn add_monotone_chain<I, S>(&self, names: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.call(Request::AddMonotoneChain {
            names: names.into_iter().map(Into::into).collect(),
        })
        .map(|_| ())
    }

    /// Finish declaration and start tuning with the given strategy.
    pub fn seal(&self, options: SessionOptions, strategy: StrategyKind) -> Result<()> {
        self.call(Request::Seal { options, strategy }).map(|_| ())
    }

    /// Get the next configuration to run. Returns the same configuration
    /// until [`report`](Self::report) answers it.
    pub fn fetch(&self) -> Result<Fetched> {
        match self.call(Request::Fetch)? {
            Reply::Config {
                config,
                iteration,
                finished,
            } => Ok(Fetched {
                config,
                iteration,
                finished,
            }),
            _ => Err(HarmonyError::Protocol("unexpected reply to Fetch".into())),
        }
    }

    /// Report a measured cost whose measurement wall time equals the cost.
    pub fn report(&self, cost: f64) -> Result<()> {
        self.report_timed(cost, cost)
    }

    /// Report a measured cost and the wall time spent measuring it.
    pub fn report_timed(&self, cost: f64, wall_time: f64) -> Result<()> {
        self.call(Request::Report { cost, wall_time }).map(|_| ())
    }

    /// Get up to `max` configurations to measure in one round-trip (a whole
    /// PRO round, for example). Returns `(trials, finished)`; still-
    /// unreported trials from earlier fetches are served again first, then
    /// requeued trials of departed members, then fresh proposals.
    pub fn fetch_batch(&self, max: usize) -> Result<(Vec<FetchedTrial>, bool)> {
        match self.call(Request::FetchBatch { max })? {
            Reply::Configs { trials, finished } => Ok((trials, finished)),
            _ => Err(HarmonyError::Protocol(
                "unexpected reply to FetchBatch".into(),
            )),
        }
    }

    /// Report measured costs for any subset of outstanding trials in one
    /// round-trip. Each entry echoes the trial's iteration token; a stale
    /// duplicate (the trial was requeued and already re-measured) is
    /// tolerated, so retrying a possibly-delivered report is safe.
    pub fn report_batch(&self, reports: Vec<TrialReport>) -> Result<()> {
        self.call(Request::ReportBatch { reports }).map(|_| ())
    }

    /// The best `(configuration, cost)` found so far, if any.
    pub fn best(&self) -> Result<Option<(Configuration, f64)>> {
        match self.call(Request::QueryBest)? {
            Reply::Best { best } => Ok(best),
            _ => Err(HarmonyError::Protocol(
                "unexpected reply to QueryBest".into(),
            )),
        }
    }

    /// The full evaluation history of the session, and whether it finished.
    pub fn history(&self) -> Result<(History, bool)> {
        match self.call(Request::QueryHistory)? {
            Reply::History { history, finished } => Ok((history, finished)),
            _ => Err(HarmonyError::Protocol(
                "unexpected reply to QueryHistory".into(),
            )),
        }
    }

    /// Refresh this client's liveness without any other effect — send it
    /// from long measurements when the server runs with a
    /// [`client_ttl`](super::ServerConfig::client_ttl).
    pub fn heartbeat(&self) -> Result<()> {
        self.call(Request::Heartbeat).map(|_| ())
    }

    /// Depart from the session, requeueing this client's outstanding trials
    /// for the remaining members. The handle is unusable afterwards.
    pub fn leave(&self) -> Result<()> {
        self.call(Request::Leave).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HarmonyServer;

    #[test]
    fn client_exposes_id_and_app() {
        let server = HarmonyServer::start();
        let c = server.connect("petsc").unwrap();
        assert_eq!(c.app(), "petsc");
        assert!(c.id() > 0);
        assert_eq!(c.session_id(), c.id(), "founder's session id is its own");
        server.shutdown();
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let server = HarmonyServer::start();
        let c = server.connect("app").unwrap();
        server.shutdown();
        assert!(matches!(
            c.add_param(Param::int("x", 0, 1, 1)),
            Err(HarmonyError::Disconnected)
        ));
    }

    #[test]
    fn best_before_any_evaluation_is_none() {
        let server = HarmonyServer::start();
        let c = server.connect("app").unwrap();
        assert_eq!(c.best().unwrap(), None);
        c.add_param(Param::int("x", 0, 4, 1)).unwrap();
        c.seal(SessionOptions::default(), StrategyKind::NelderMead)
            .unwrap();
        assert_eq!(c.best().unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn leave_then_use_is_an_error() {
        let server = HarmonyServer::start();
        let c = server.connect("app").unwrap();
        c.leave().unwrap();
        assert!(matches!(c.best(), Err(HarmonyError::Protocol(_))));
        server.shutdown();
    }
}

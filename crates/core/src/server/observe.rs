//! The observability plane: a tiny embedded HTTP/1.1 responder serving
//! live metrics and search-state introspection for a running
//! [`HarmonyServer`](super::HarmonyServer).
//!
//! Started with [`HarmonyServer::observe`](super::HarmonyServer::observe),
//! the responder runs on its own thread and answers:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of every
//!   telemetry counter and latency histogram, plus per-shard queue-depth
//!   gauges.
//! * `GET /status` — JSON: per-session strategy, best-so-far cost and
//!   configuration, simplex vertex costs and spread, evaluations done,
//!   pending/outstanding/requeued trial counts, per-shard queue depths,
//!   store hit rate and WAL position.
//! * `GET /trials?n=K` — the last `K` trial lifecycle events from the
//!   telemetry ring (all of them without `n`).
//! * `GET /spans?n=K` — the last `K` completed timing spans.
//! * `GET /trace` — the completed spans as Chrome trace-event JSON,
//!   loadable in Perfetto (`repro trace --from <addr>` pulls this).
//! * `GET /store/log?from=SEQ` — the attached performance store's record
//!   log from sequence `SEQ` on: a JSON header line
//!   (`{"kind":"ah-store-log","start":S,"total":T}`) followed by one
//!   record per line in the store's own on-disk encoding. This is the
//!   replication feed peer servers pull on their anti-entropy interval
//!   ([`ServerConfig::sync_peers`]); a `from` past the end re-serves the
//!   whole log (the merge is idempotent, and it re-anchors a puller after
//!   the peer compacted). 404 when no store is attached.
//! * `GET /` — an index of the routes above.
//!
//! Everything stays off the tuning hot path: building a response takes each
//! shard lock only long enough to copy a [`SearchSnapshot`] out, and the
//! shard workers never block on the responder. The implementation is
//! hand-rolled over [`std::net::TcpListener`] — the repo builds offline
//! against vendored crates only, so no HTTP dependency is available, and
//! two GET routes do not justify one.
//!
//! [`SearchSnapshot`]: crate::session::SearchSnapshot

use super::{ServerBus, ServerConfig, SessionPhase, SessionState};
use crate::telemetry::Counter;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a single request may dribble in before the responder gives up
/// on the connection. One slow client must not wedge the plane.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// `kind` value of the [`StoreLogHeader`] a `/store/log` response leads
/// with, so a puller never mistakes an arbitrary HTTP body for a log.
pub(crate) const STORE_LOG_KIND: &str = "ah-store-log";

/// First line of a `/store/log` response: which slice of the peer's record
/// log follows. `start` is where the slice begins (it may be less than the
/// requested `from` after a compaction re-anchor) and `total` is the
/// peer's record count, i.e. the next `from` to ask for.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct StoreLogHeader {
    pub kind: String,
    pub start: usize,
    pub total: usize,
}

/// Handle to a running observability responder. Dropping it (or calling
/// [`stop`](ObserveHandle::stop)) shuts the responder thread down.
pub struct ObserveHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObserveHandle {
    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the responder thread and wait for it to exit.
    pub fn stop(mut self) {
        self.do_stop();
    }

    fn do_stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop the same way TcpHarmonyServer does: a
        // throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObserveHandle {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.do_stop();
        }
    }
}

/// Bind `addr` and start the responder thread.
pub(crate) fn start(
    addr: &str,
    bus: ServerBus,
    cfg: ServerConfig,
) -> std::io::Result<ObserveHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("harmony-observe".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                // Requests are served inline, one at a time: every route is
                // a snapshot-and-format, so there is nothing to parallelise
                // and nothing for a second connection to wait long for.
                if let Ok(stream) = conn {
                    let _ = serve_connection(stream, &bus, &cfg);
                }
            }
        })?;
    Ok(ObserveHandle {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Read one request, write one response, close.
fn serve_connection(stream: TcpStream, bus: &ServerBus, cfg: &ServerConfig) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; GET requests carry no body we care about.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => respond(&mut stream, 200, "application/json", &render(index_json())),
        "/metrics" => {
            let mut body = cfg.telemetry.prometheus();
            body.push_str(&queue_depth_exposition(bus));
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/status" => respond(
            &mut stream,
            200,
            "application/json",
            &render(status_json(bus, cfg)),
        ),
        "/trials" => {
            let events = tail(cfg.telemetry.events(), parse_n(query));
            let body = serde_json::to_string(&events).unwrap_or_else(|_| "[]".into());
            respond(&mut stream, 200, "application/json", &format!("{body}\n"))
        }
        "/spans" => {
            let spans = tail(cfg.telemetry.spans(), parse_n(query));
            let body = serde_json::to_string(&spans).unwrap_or_else(|_| "[]".into());
            respond(&mut stream, 200, "application/json", &format!("{body}\n"))
        }
        "/trace" => respond(
            &mut stream,
            200,
            "application/json",
            &render(cfg.telemetry.chrome_trace()),
        ),
        "/store/log" => match &cfg.store {
            Some(store) => {
                let from = parse_query(query, "from").unwrap_or(0);
                let (start, blob) = store.encode_log_from(from);
                let total = start + blob.lines().count();
                let header = serde_json::to_string(&StoreLogHeader {
                    kind: STORE_LOG_KIND.to_string(),
                    start,
                    total,
                })
                .expect("header serialises");
                respond(
                    &mut stream,
                    200,
                    "application/x-ndjson",
                    &format!("{header}\n{blob}"),
                )
            }
            None => respond(&mut stream, 404, "text/plain", "no store attached\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// A JSON document as a newline-terminated response body.
fn render(v: Value) -> String {
    let mut body = serde_json::to_string(&v).unwrap_or_else(|_| "null".into());
    body.push('\n');
    body
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The `n` value of a `n=K` query string, if present and numeric.
fn parse_n(query: &str) -> Option<usize> {
    parse_query(query, "n")
}

/// The numeric value of `key=K` in a query string, if present.
fn parse_query(query: &str, key: &str) -> Option<usize> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find_map(|(k, v)| (k == key).then(|| v.parse().ok()).flatten())
}

/// Keep the last `n` items (all of them when `n` is `None`).
fn tail<T>(mut items: Vec<T>, n: Option<usize>) -> Vec<T> {
    if let Some(n) = n {
        let cut = items.len().saturating_sub(n);
        items.drain(..cut);
    }
    items
}

fn index_json() -> Value {
    json!({
        "endpoints": [
            "/metrics",
            "/status",
            "/trials?n=K",
            "/spans?n=K",
            "/trace",
            "/store/log?from=SEQ",
        ],
    })
}

/// Per-shard queue depth as a Prometheus gauge, appended to the telemetry
/// exposition (the depths live on the bus, not in the telemetry handle).
fn queue_depth_exposition(bus: &ServerBus) -> String {
    let mut out = String::from(
        "# HELP ah_shard_queue_depth Envelopes queued per shard, not yet picked up.\n\
         # TYPE ah_shard_queue_depth gauge\n",
    );
    for (i, depth) in bus.queue_depths().iter().enumerate() {
        out.push_str(&format!("ah_shard_queue_depth{{shard=\"{i}\"}} {depth}\n"));
    }
    out
}

/// The `/status` document. Takes each shard lock once, briefly.
fn status_json(bus: &ServerBus, cfg: &ServerConfig) -> Value {
    let mut sessions: Vec<(u64, Value)> = Vec::new();
    for (shard_idx, shard) in bus.shards.iter().enumerate() {
        let table = shard.table.lock();
        for (&id, state) in table.sessions.iter() {
            sessions.push((id, session_json(shard_idx, id, state)));
        }
    }
    // Shard iteration order is arbitrary; keep the document stable.
    sessions.sort_by_key(|(id, _)| *id);
    let sessions: Vec<Value> = sessions.into_iter().map(|(_, v)| v).collect();

    let t = &cfg.telemetry;
    let hits = t.counter(Counter::StoreHits);
    let misses = t.counter(Counter::StoreMisses);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        f64::NAN // serialises as null: no lookups yet
    };
    let tenants: Vec<Value> = cfg
        .tenants
        .snapshot()
        .into_iter()
        .map(|(name, sessions, inflight, queued, served)| {
            json!({
                "tenant": name,
                "sessions": sessions,
                "inflight": inflight,
                "queued": queued,
                "served": served,
            })
        })
        .collect();
    json!({
        "server": {
            "shards": bus.shards.len(),
            "clients": bus.client_count(),
            "queue_depths": bus.queue_depths(),
        },
        "sessions": Value::Array(sessions),
        "tenants": Value::Array(tenants),
        "quotas": {
            "max_sessions": cfg.tenant_max_sessions,
            "max_inflight": cfg.tenant_max_inflight,
            "refusals": t.counter(Counter::QuotaRefusals),
        },
        "store": {
            "attached": cfg.store.is_some(),
            "records": cfg.store.as_ref().map(|s| s.record_count()),
            "hits": hits,
            "misses": misses,
            "hit_rate": hit_rate,
            "inserts": t.counter(Counter::StoreInserts),
            "merged_records": t.counter(Counter::StoreMergedRecords),
            "merge_conflicts": t.counter(Counter::StoreMergeConflicts),
            "torn_tails": t.counter(Counter::StoreTornTails),
        },
        "wal": {
            "appends": t.counter(Counter::WalAppends),
            "replayed": t.counter(Counter::WalReplayed),
            "torn_tails": t.counter(Counter::WalTornTails),
        },
        "telemetry": {
            "enabled": t.is_enabled(),
            "events_dropped": t.dropped_events(),
            "spans_open": t.open_spans(),
            "spans_dropped": t.dropped_spans(),
        },
    })
}

fn session_json(shard: usize, id: u64, state: &SessionState) -> Value {
    match &state.phase {
        SessionPhase::Building { .. } => json!({
            "session": id,
            "app": state.app.clone(),
            "shard": shard,
            "members": state.members.len(),
            "phase": "building",
        }),
        SessionPhase::Tuning {
            session,
            outstanding,
            issued_high,
            fingerprint,
        } => {
            let snap = session.search_snapshot();
            let unclaimed = outstanding.iter().filter(|t| t.owner == 0).count();
            let requeued = outstanding.iter().filter(|t| t.requeued).count();
            json!({
                "session": id,
                "app": state.app.clone(),
                "shard": shard,
                "members": state.members.len(),
                "phase": "tuning",
                "strategy": snap.strategy,
                "evaluations": snap.evaluations,
                "cached_evaluations": snap.cached_evaluations,
                "best_cost": snap.best_cost,
                "best_config": snap.best_config,
                "stop_reason": snap.stop_reason.map(|r| r.name()),
                "pending": snap.pending,
                "awaiting_report": snap.awaiting_report,
                "outstanding": outstanding.len(),
                "requeued": requeued,
                "unclaimed": unclaimed,
                "issued_high": *issued_high,
                "fingerprint": format!("{fingerprint:016x}"),
                "search": snap.search,
            })
        }
    }
}

/// Minimal HTTP GET against an observability responder: returns
/// `(status code, body)`. Shared by `repro watch`, `repro trace --from`,
/// and the integration tests — none of which want an HTTP client
/// dependency any more than the server wants a framework.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "missing status"))?;
    Ok((code, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::super::HarmonyServer;
    use super::*;
    use crate::param::Param;
    use crate::server::protocol::StrategyKind;
    use crate::session::SessionOptions;
    use crate::telemetry::Telemetry;

    fn observed_server() -> (HarmonyServer, ObserveHandle) {
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 2,
            telemetry: Telemetry::enabled(),
            ..Default::default()
        });
        let observe = server.observe("127.0.0.1:0").expect("bind observer");
        (server, observe)
    }

    #[test]
    fn endpoints_serve_metrics_status_trials_and_trace() {
        let (server, observe) = observed_server();
        let addr = observe.addr().to_string();

        let client = server.connect("observe-app").unwrap();
        client.add_param(Param::int("x", 0, 60, 1)).unwrap();
        client.add_param(Param::int("y", 0, 60, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 40,
                    seed: 27,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        for _ in 0..30 {
            let fetch = client.fetch().unwrap();
            if fetch.finished {
                break;
            }
            let x = fetch.config.int("x").unwrap() as f64;
            let y = fetch.config.int("y").unwrap() as f64;
            client
                .report((x - 42.0).powi(2) + (y - 13.0).powi(2))
                .unwrap();
        }

        let (code, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("ah_trials_reported_total"), "{body}");
        assert!(
            body.contains("ah_shard_queue_depth{shard=\"0\"} "),
            "{body}"
        );
        assert!(
            body.contains("ah_shard_queue_depth{shard=\"1\"} "),
            "{body}"
        );

        let (code, body) = http_get(&addr, "/status").unwrap();
        assert_eq!(code, 200);
        let doc: Value = serde_json::parse(&body).expect("status is valid JSON");
        let sessions = doc.get("sessions").and_then(Value::as_array).unwrap();
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.get("phase").and_then(Value::as_str), Some("tuning"));
        assert_eq!(
            s.get("strategy").and_then(Value::as_str),
            Some("nelder-mead")
        );
        assert!(s.get("evaluations").and_then(Value::as_u64).unwrap() > 0);
        assert!(s.get("best_cost").and_then(Value::as_f64).is_some());
        let simplex = s.get("search").and_then(|v| v.get("simplex")).unwrap();
        assert!(!simplex
            .get("vertex_costs")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
        let depths = doc
            .get("server")
            .and_then(|v| v.get("queue_depths"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(depths.len(), 2);

        let (code, body) = http_get(&addr, "/trials?n=5").unwrap();
        assert_eq!(code, 200);
        let trials: Value = serde_json::parse(&body).unwrap();
        let trials = trials.as_array().unwrap();
        assert!(!trials.is_empty() && trials.len() <= 5, "{}", trials.len());

        let (code, body) = http_get(&addr, "/spans?n=3").unwrap();
        assert_eq!(code, 200);
        let spans: Value = serde_json::parse(&body).unwrap();
        assert!(spans.as_array().unwrap().len() <= 3);

        let (code, body) = http_get(&addr, "/trace").unwrap();
        assert_eq!(code, 200);
        let trace: Value = serde_json::parse(&body).unwrap();
        let events = trace
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("trace has traceEvents");
        // The shard workers produced ShardHandle spans for every request.
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(Value::as_str) == Some("shard_handle") }));

        let (code, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(code, 404);

        observe.stop();
        server.shutdown();
    }

    #[test]
    fn status_reflects_a_converging_simplex() {
        let (server, observe) = observed_server();
        let addr = observe.addr().to_string();

        let spread_at = |label: &str| -> f64 {
            let (code, body) = http_get(&addr, "/status").expect("GET /status");
            assert_eq!(code, 200, "{label}");
            let doc: Value = serde_json::parse(&body).unwrap();
            let sessions = doc.get("sessions").and_then(Value::as_array).unwrap();
            sessions[0]
                .get("search")
                .and_then(|s| s.get("simplex"))
                .and_then(|s| s.get("spread"))
                .and_then(Value::as_f64)
                .unwrap_or(f64::INFINITY)
        };

        let client = server.connect("converge-app").unwrap();
        client.add_param(Param::int("x", 0, 80, 1)).unwrap();
        client.add_param(Param::int("y", 0, 80, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 150,
                    seed: 9,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        // Probe /status after every report: the live spread trace must show
        // the simplex tightening. (It is not monotone — a collapse restart
        // re-spreads the simplex — so compare early against the best seen.)
        let mut spreads = Vec::new();
        loop {
            let fetch = client.fetch().unwrap();
            if fetch.finished {
                break;
            }
            let x = fetch.config.int("x").unwrap() as f64;
            let y = fetch.config.int("y").unwrap() as f64;
            client
                .report((x - 9.0).powi(2) + (y - 44.0).powi(2))
                .unwrap();
            spreads.push(spread_at("mid-campaign"));
        }
        let early = spreads
            .iter()
            .copied()
            .find(|s| s.is_finite() && *s > 0.0)
            .expect("a live simplex was visible mid-campaign");
        let tightest = spreads.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            tightest < early / 10.0,
            "spread should shrink as the simplex converges: \
             early={early} tightest={tightest}"
        );

        observe.stop();
        server.shutdown();
    }

    #[test]
    fn unknown_methods_and_disabled_telemetry_are_handled() {
        let server = HarmonyServer::start_with(1);
        let observe = server.observe("127.0.0.1:0").unwrap();
        let addr = observe.addr().to_string();

        // Disabled telemetry still yields a well-formed (all-zero) exposition.
        let (code, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("ah_trials_proposed_total 0"), "{body}");

        // Non-GET is refused, and the index lists the routes.
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let (code, body) = http_get(&addr, "/").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("/status"), "{body}");

        observe.stop();
        server.shutdown();
    }
}

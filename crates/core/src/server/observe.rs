//! The observability plane: a tiny embedded HTTP/1.1 responder serving
//! live metrics and search-state introspection for a running
//! [`HarmonyServer`](super::HarmonyServer).
//!
//! Started with [`HarmonyServer::observe`](super::HarmonyServer::observe),
//! the responder runs on its own thread and answers:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4) of every
//!   telemetry counter and latency histogram, plus per-shard queue-depth
//!   gauges.
//! * `GET /status` — JSON: per-session strategy, best-so-far cost and
//!   configuration, simplex vertex costs and spread, evaluations done,
//!   pending/outstanding/requeued trial counts, per-shard queue depths,
//!   store hit rate and WAL position.
//! * `GET /trials?n=K` — the last `K` trial lifecycle events from the
//!   telemetry ring (all of them without `n`).
//! * `GET /spans?n=K` — the last `K` completed timing spans.
//! * `GET /trace` — the completed spans as Chrome trace-event JSON,
//!   loadable in Perfetto (`repro trace --from <addr>` pulls this).
//! * `GET /store/log?from=SEQ` — the attached performance store's record
//!   log from sequence `SEQ` on: a JSON header line
//!   (`{"kind":"ah-store-log","start":S,"total":T}`) followed by one
//!   record per line in the store's own on-disk encoding. This is the
//!   replication feed peer servers pull on their anti-entropy interval
//!   ([`ServerConfig::sync_peers`]); a `from` past the end re-serves the
//!   whole log (the merge is idempotent, and it re-anchors a puller after
//!   the peer compacted). 404 when no store is attached.
//! * `GET /` — an index of the routes above.
//!
//! Everything stays off the tuning hot path: building a response takes each
//! shard lock only long enough to copy a [`SearchSnapshot`] out, and the
//! shard workers never block on the responder. The implementation is
//! hand-rolled over [`std::net::TcpListener`] — the repo builds offline
//! against vendored crates only, so no HTTP dependency is available, and
//! two GET routes do not justify one.
//!
//! [`SearchSnapshot`]: crate::session::SearchSnapshot

use super::{ServerBus, ServerConfig, SessionPhase, SessionState};
use crate::telemetry::{slo, Counter};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a single request may dribble in before the responder gives up
/// on the connection. One slow client must not wedge the plane.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// `kind` value of the [`StoreLogHeader`] a `/store/log` response leads
/// with, so a puller never mistakes an arbitrary HTTP body for a log.
pub(crate) const STORE_LOG_KIND: &str = "ah-store-log";

/// First line of a `/store/log` response: which slice of the peer's record
/// log follows. `start` is where the slice begins (it may be less than the
/// requested `from` after a compaction re-anchor) and `total` is the
/// peer's record count, i.e. the next `from` to ask for.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct StoreLogHeader {
    pub kind: String,
    pub start: usize,
    pub total: usize,
}

/// Handle to a running observability responder. Dropping it (or calling
/// [`stop`](ObserveHandle::stop)) shuts the responder thread down.
pub struct ObserveHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObserveHandle {
    /// The bound address (resolves port 0 to the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the responder thread and wait for it to exit.
    pub fn stop(mut self) {
        self.do_stop();
    }

    fn do_stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop the same way TcpHarmonyServer does: a
        // throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObserveHandle {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.do_stop();
        }
    }
}

/// Everything a connection thread needs to answer any route: the bus for
/// shard snapshots, the config for telemetry/store/peers, the last-good
/// peer snapshot cache behind `/fleet`, this responder's own bound
/// address (its identity in the fleet view), and the shared stop flag.
struct ObserveCtx {
    bus: ServerBus,
    cfg: ServerConfig,
    fleet: FleetCache,
    local: SocketAddr,
    stop: Arc<AtomicBool>,
}

/// Last good `/fleet` snapshot per peer: `(fetched_at, row)`. A peer that
/// stops answering keeps contributing its cached row, marked stale with
/// its age — a fleet view must degrade, not blank, when one server blips.
type FleetCache = Arc<Mutex<HashMap<String, (Instant, Value)>>>;

/// Bind `addr` and start the responder thread.
pub(crate) fn start(
    addr: &str,
    bus: ServerBus,
    cfg: ServerConfig,
) -> std::io::Result<ObserveHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let ctx = Arc::new(ObserveCtx {
        bus,
        cfg,
        fleet: Arc::new(Mutex::new(HashMap::new())),
        local,
        stop: Arc::clone(&stop),
    });
    let stop_accept = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("harmony-observe".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                // One short-lived thread per connection: connections are
                // keep-alive (a `repro watch` holds one open per tick
                // interval, Prometheus scrapers pipeline), so serving
                // inline would let one slow scraper wedge the plane.
                if let Ok(stream) = conn {
                    let ctx = Arc::clone(&ctx);
                    let _ = std::thread::Builder::new()
                        .name("harmony-observe-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, &ctx);
                        });
                }
            }
        })?;
    Ok(ObserveHandle {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Serve one connection: requests in a keep-alive loop until the peer
/// closes, asks to close, errors, or the responder is stopping. Responses
/// are written through the `BufReader`'s underlying stream so pipelined
/// request bytes already buffered are never lost.
fn serve_connection(stream: TcpStream, ctx: &ObserveCtx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut request_line = String::new();
        if reader.read_line(&mut request_line)? == 0 {
            return Ok(()); // clean EOF between requests
        }
        if request_line.trim().is_empty() {
            continue; // stray CRLF between pipelined requests
        }
        // Drain the headers; the only one that changes behavior is an
        // explicit `Connection: close`.
        let mut close = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                close = true;
                break;
            }
            if line == "\r\n" || line == "\n" {
                break;
            }
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("connection:") && lower.contains("close") {
                close = true;
            }
        }

        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let target = parts.next().unwrap_or("");
        if method != "GET" {
            // A non-GET may carry a body this loop does not parse; answer
            // with a correctly-framed 405 and close rather than misread
            // the body bytes as a next request.
            respond(
                reader.get_mut(),
                405,
                "text/plain",
                "method not allowed\n",
                true,
            )?;
            return Ok(());
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let stream = reader.get_mut();
        let (bus, cfg) = (&ctx.bus, &ctx.cfg);
        match path {
            "/" => respond(
                stream,
                200,
                "application/json",
                &render(index_json()),
                close,
            )?,
            "/metrics" => {
                let mut body = cfg.telemetry.prometheus();
                body.push_str(&queue_depth_exposition(bus));
                respond(
                    stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                    close,
                )?
            }
            "/metrics/history" => match &cfg.timeseries {
                Some(series) => {
                    let window =
                        Duration::from_secs(parse_query(query, "window").unwrap_or(60) as u64);
                    respond(
                        stream,
                        200,
                        "application/json",
                        &render(series.history_json(window)),
                        close,
                    )?
                }
                None => respond(stream, 404, "text/plain", "no timeseries attached\n", close)?,
            },
            "/healthz" => {
                let (code, doc) = healthz_json(cfg);
                respond(stream, code, "application/json", &render(doc), close)?
            }
            "/fleet" => respond(
                stream,
                200,
                "application/json",
                &render(fleet_json(ctx)),
                close,
            )?,
            "/status" => respond(
                stream,
                200,
                "application/json",
                &render(status_json(bus, cfg)),
                close,
            )?,
            "/trials" => {
                let events = tail(cfg.telemetry.events(), parse_n(query));
                let body = serde_json::to_string(&events).unwrap_or_else(|_| "[]".into());
                respond(stream, 200, "application/json", &format!("{body}\n"), close)?
            }
            "/spans" => {
                let spans = tail(cfg.telemetry.spans(), parse_n(query));
                let body = serde_json::to_string(&spans).unwrap_or_else(|_| "[]".into());
                respond(stream, 200, "application/json", &format!("{body}\n"), close)?
            }
            "/trace" => respond(
                stream,
                200,
                "application/json",
                &render(cfg.telemetry.chrome_trace()),
                close,
            )?,
            "/store/log" => match &cfg.store {
                Some(store) => {
                    let from = parse_query(query, "from").unwrap_or(0);
                    let (start, blob) = store.encode_log_from(from);
                    let total = start + blob.lines().count();
                    let header = serde_json::to_string(&StoreLogHeader {
                        kind: STORE_LOG_KIND.to_string(),
                        start,
                        total,
                    })
                    .expect("header serialises");
                    respond(
                        stream,
                        200,
                        "application/x-ndjson",
                        &format!("{header}\n{blob}"),
                        close,
                    )?
                }
                None => respond(stream, 404, "text/plain", "no store attached\n", close)?,
            },
            _ => respond(stream, 404, "text/plain", "not found\n", close)?,
        }
        if close {
            return Ok(());
        }
    }
}

/// A JSON document as a newline-terminated response body.
fn render(v: Value) -> String {
    let mut body = serde_json::to_string(&v).unwrap_or_else(|_| "null".into());
    body.push('\n');
    body
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The `n` value of a `n=K` query string, if present and numeric.
fn parse_n(query: &str) -> Option<usize> {
    parse_query(query, "n")
}

/// The numeric value of `key=K` in a query string, if present.
fn parse_query(query: &str, key: &str) -> Option<usize> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find_map(|(k, v)| (k == key).then(|| v.parse().ok()).flatten())
}

/// Keep the last `n` items (all of them when `n` is `None`).
fn tail<T>(mut items: Vec<T>, n: Option<usize>) -> Vec<T> {
    if let Some(n) = n {
        let cut = items.len().saturating_sub(n);
        items.drain(..cut);
    }
    items
}

fn index_json() -> Value {
    json!({
        "endpoints": [
            "/metrics",
            "/metrics/history?window=S",
            "/healthz",
            "/fleet",
            "/status",
            "/trials?n=K",
            "/spans?n=K",
            "/trace",
            "/store/log?from=SEQ",
        ],
    })
}

/// The `/healthz` route: evaluate the configured SLO rules against the
/// attached time-series. `(status code, verdict document)` — 503 on any
/// breach, 200 otherwise (including when no series or rules are
/// configured: an unconfigured health check must not fail the probe).
fn healthz_json(cfg: &ServerConfig) -> (u16, Value) {
    match &cfg.timeseries {
        Some(series) => {
            let report = slo::evaluate(&cfg.slo_rules, series);
            let code = if report.healthy { 200 } else { 503 };
            let mut doc = report.json();
            if let Value::Object(fields) = &mut doc {
                fields.push(("samples".to_string(), Value::UInt(series.len() as u64)));
            }
            (code, doc)
        }
        None => (
            200,
            json!({
                "healthy": true,
                "status": "ok",
                "rules": [],
                "note": "no timeseries attached",
            }),
        ),
    }
}

/// The unlabeled value of counter `ah_<name>_total` in a Prometheus text
/// exposition — how `/fleet` reads a peer's `/metrics` without a parser
/// dependency.
fn exposition_counter(text: &str, name: &str) -> Option<u64> {
    let prefix = format!("ah_{name}_total ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix).and_then(|v| v.trim().parse().ok()))
}

/// One fleet row built from a peer's `/status` + `/metrics` bodies.
fn fleet_row(
    addr: &str,
    is_self: bool,
    fresh: bool,
    age_s: f64,
    status: &Value,
    metrics: &str,
) -> Value {
    let sessions = status
        .get("sessions")
        .and_then(Value::as_array)
        .map(|s| s.len())
        .unwrap_or(0);
    let queue_depth: u64 = status
        .get("server")
        .and_then(|s| s.get("queue_depths"))
        .and_then(Value::as_array)
        .map(|d| d.iter().filter_map(Value::as_u64).sum())
        .unwrap_or(0);
    let store_records = status
        .get("store")
        .and_then(|s| s.get("records"))
        .and_then(Value::as_u64);
    let tenants = status.get("tenant_metrics").cloned().unwrap_or(Value::Null);
    json!({
        "addr": addr,
        "self": is_self,
        "fresh": fresh,
        "age_s": age_s,
        "sessions": sessions,
        "queue_depth": queue_depth,
        "store_records": store_records,
        "evaluations": exposition_counter(metrics, "trials_reported"),
        "reports": exposition_counter(metrics, "trials_measured"),
        "quota_refusals": exposition_counter(metrics, "quota_refusals"),
        "tenants": tenants,
    })
}

/// The `/fleet` document: this server plus every `sync_peers` member,
/// each summarized from its `/status` + `/metrics`, with per-peer
/// freshness and fleet-wide totals. Unreachable peers degrade to their
/// cached row (marked stale) rather than vanishing.
fn fleet_json(ctx: &ObserveCtx) -> Value {
    let mut rows = Vec::new();
    // Self: build the same row from local state, no HTTP round trip.
    let self_addr = ctx.local.to_string();
    let status = status_json(&ctx.bus, &ctx.cfg);
    let mut metrics = ctx.cfg.telemetry.prometheus();
    metrics.push_str(&queue_depth_exposition(&ctx.bus));
    rows.push(fleet_row(&self_addr, true, true, 0.0, &status, &metrics));

    for peer in &ctx.cfg.sync_peers {
        let fetched = http_get(peer, "/status")
            .ok()
            .filter(|(code, _)| *code == 200)
            .and_then(|(_, body)| serde_json::parse(&body).ok())
            .and_then(|status: Value| {
                http_get(peer, "/metrics")
                    .ok()
                    .filter(|(code, _)| *code == 200)
                    .map(|(_, metrics)| (status, metrics))
            });
        let row = match fetched {
            Some((status, metrics)) => {
                let row = fleet_row(peer, false, true, 0.0, &status, &metrics);
                ctx.fleet
                    .lock()
                    .insert(peer.clone(), (Instant::now(), row.clone()));
                row
            }
            None => match ctx.fleet.lock().get(peer) {
                Some((at, cached)) => {
                    let mut row = cached.clone();
                    if let Value::Object(fields) = &mut row {
                        for (k, v) in fields.iter_mut() {
                            match k.as_str() {
                                "fresh" => *v = Value::Bool(false),
                                "age_s" => *v = Value::Float(at.elapsed().as_secs_f64()),
                                _ => {}
                            }
                        }
                    }
                    row
                }
                None => json!({
                    "addr": peer.clone(),
                    "self": false,
                    "fresh": false,
                    "age_s": null,
                    "error": "unreachable",
                }),
            },
        };
        rows.push(row);
    }

    let fresh = rows
        .iter()
        .filter(|r| r.get("fresh").and_then(Value::as_bool) == Some(true))
        .count();
    let sum = |key: &str| -> u64 {
        rows.iter()
            .filter_map(|r| r.get(key).and_then(Value::as_u64))
            .sum()
    };
    // Merge every peer's per-tenant series: tenant → metric → summed value.
    let mut tenant_totals: Vec<(String, Vec<(String, u64)>)> = Vec::new();
    for row in &rows {
        let Some(tenants) = row.get("tenants").and_then(Value::as_object) else {
            continue;
        };
        for (tenant, metrics) in tenants {
            let slot = match tenant_totals.iter_mut().find(|(t, _)| t == tenant) {
                Some((_, slot)) => slot,
                None => {
                    tenant_totals.push((tenant.clone(), Vec::new()));
                    &mut tenant_totals.last_mut().expect("just pushed").1
                }
            };
            if let Some(fields) = metrics.as_object() {
                for (metric, value) in fields {
                    let v = value.as_u64().unwrap_or(0);
                    match slot.iter_mut().find(|(m, _)| m == metric) {
                        Some((_, total)) => *total += v,
                        None => slot.push((metric.clone(), v)),
                    }
                }
            }
        }
    }
    let tenants = Value::Object(
        tenant_totals
            .into_iter()
            .map(|(tenant, metrics)| {
                (
                    tenant,
                    Value::Object(
                        metrics
                            .into_iter()
                            .map(|(m, v)| (m, Value::UInt(v)))
                            .collect(),
                    ),
                )
            })
            .collect(),
    );
    json!({
        "peers": rows.len(),
        "fresh": fresh,
        "totals": {
            "evaluations": sum("evaluations"),
            "reports": sum("reports"),
            "sessions": sum("sessions"),
            "quota_refusals": sum("quota_refusals"),
        },
        "tenants": tenants,
        "rows": Value::Array(rows),
    })
}

/// Per-shard queue depth as a Prometheus gauge, appended to the telemetry
/// exposition (the depths live on the bus, not in the telemetry handle).
fn queue_depth_exposition(bus: &ServerBus) -> String {
    let mut out = String::from(
        "# HELP ah_shard_queue_depth Envelopes queued per shard, not yet picked up.\n\
         # TYPE ah_shard_queue_depth gauge\n",
    );
    for (i, depth) in bus.queue_depths().iter().enumerate() {
        out.push_str(&format!("ah_shard_queue_depth{{shard=\"{i}\"}} {depth}\n"));
    }
    out
}

/// The `/status` document. Takes each shard lock once, briefly.
fn status_json(bus: &ServerBus, cfg: &ServerConfig) -> Value {
    let mut sessions: Vec<(u64, Value)> = Vec::new();
    for (shard_idx, shard) in bus.shards.iter().enumerate() {
        let table = shard.table.lock();
        for (&id, state) in table.sessions.iter() {
            sessions.push((id, session_json(shard_idx, id, state)));
        }
    }
    // Shard iteration order is arbitrary; keep the document stable.
    sessions.sort_by_key(|(id, _)| *id);
    let sessions: Vec<Value> = sessions.into_iter().map(|(_, v)| v).collect();

    let t = &cfg.telemetry;
    let hits = t.counter(Counter::StoreHits);
    let misses = t.counter(Counter::StoreMisses);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        f64::NAN // serialises as null: no lookups yet
    };
    let tenants: Vec<Value> = cfg
        .tenants
        .snapshot()
        .into_iter()
        .map(|(name, sessions, inflight, queued, served)| {
            json!({
                "tenant": name,
                "sessions": sessions,
                "inflight": inflight,
                "queued": queued,
                "served": served,
            })
        })
        .collect();
    json!({
        "server": {
            "shards": bus.shards.len(),
            "clients": bus.client_count(),
            "queue_depths": bus.queue_depths(),
        },
        "sessions": Value::Array(sessions),
        "tenants": Value::Array(tenants),
        "quotas": {
            "max_sessions": cfg.tenant_max_sessions,
            "max_inflight": cfg.tenant_max_inflight,
            "refusals": t.counter(Counter::QuotaRefusals),
        },
        "store": {
            "attached": cfg.store.is_some(),
            "records": cfg.store.as_ref().map(|s| s.record_count()),
            "hits": hits,
            "misses": misses,
            "hit_rate": hit_rate,
            "inserts": t.counter(Counter::StoreInserts),
            "merged_records": t.counter(Counter::StoreMergedRecords),
            "merge_conflicts": t.counter(Counter::StoreMergeConflicts),
            "torn_tails": t.counter(Counter::StoreTornTails),
        },
        "wal": {
            "appends": t.counter(Counter::WalAppends),
            "replayed": t.counter(Counter::WalReplayed),
            "torn_tails": t.counter(Counter::WalTornTails),
        },
        "telemetry": {
            "enabled": t.is_enabled(),
            "events_dropped": t.dropped_events(),
            "spans_open": t.open_spans(),
            "spans_dropped": t.dropped_spans(),
        },
        "counters": t.counters_json(),
        "tenant_metrics": t.tenant_counters_json(),
        "slo": {
            "timeseries": cfg.timeseries.is_some(),
            "retained_samples": cfg.timeseries.as_ref().map(|s| s.len()),
            "rules": cfg.slo_rules.iter().map(|r| r.spec()).collect::<Vec<_>>(),
        },
    })
}

fn session_json(shard: usize, id: u64, state: &SessionState) -> Value {
    match &state.phase {
        SessionPhase::Building { .. } => json!({
            "session": id,
            "app": state.app.clone(),
            "shard": shard,
            "members": state.members.len(),
            "phase": "building",
        }),
        SessionPhase::Tuning {
            session,
            outstanding,
            issued_high,
            fingerprint,
        } => {
            let snap = session.search_snapshot();
            let unclaimed = outstanding.iter().filter(|t| t.owner == 0).count();
            let requeued = outstanding.iter().filter(|t| t.requeued).count();
            json!({
                "session": id,
                "app": state.app.clone(),
                "shard": shard,
                "members": state.members.len(),
                "phase": "tuning",
                "strategy": snap.strategy,
                "evaluations": snap.evaluations,
                "cached_evaluations": snap.cached_evaluations,
                "best_cost": snap.best_cost,
                "best_config": snap.best_config,
                "stop_reason": snap.stop_reason.map(|r| r.name()),
                "pending": snap.pending,
                "awaiting_report": snap.awaiting_report,
                "outstanding": outstanding.len(),
                "requeued": requeued,
                "unclaimed": unclaimed,
                "issued_high": *issued_high,
                "fingerprint": format!("{fingerprint:016x}"),
                "search": snap.search,
            })
        }
    }
}

/// Minimal HTTP GET against an observability responder: returns
/// `(status code, body)`. Shared by `repro watch`, `repro trace --from`,
/// and the integration tests — none of which want an HTTP client
/// dependency any more than the server wants a framework.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response")
    })?;
    let code = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "missing status"))?;
    Ok((code, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::super::HarmonyServer;
    use super::*;
    use crate::param::Param;
    use crate::server::protocol::StrategyKind;
    use crate::session::SessionOptions;
    use crate::telemetry::Telemetry;

    fn observed_server() -> (HarmonyServer, ObserveHandle) {
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 2,
            telemetry: Telemetry::enabled(),
            ..Default::default()
        });
        let observe = server.observe("127.0.0.1:0").expect("bind observer");
        (server, observe)
    }

    #[test]
    fn endpoints_serve_metrics_status_trials_and_trace() {
        let (server, observe) = observed_server();
        let addr = observe.addr().to_string();

        let client = server.connect("observe-app").unwrap();
        client.add_param(Param::int("x", 0, 60, 1)).unwrap();
        client.add_param(Param::int("y", 0, 60, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 40,
                    seed: 27,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        for _ in 0..30 {
            let fetch = client.fetch().unwrap();
            if fetch.finished {
                break;
            }
            let x = fetch.config.int("x").unwrap() as f64;
            let y = fetch.config.int("y").unwrap() as f64;
            client
                .report((x - 42.0).powi(2) + (y - 13.0).powi(2))
                .unwrap();
        }

        let (code, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("ah_trials_reported_total"), "{body}");
        assert!(
            body.contains("ah_shard_queue_depth{shard=\"0\"} "),
            "{body}"
        );
        assert!(
            body.contains("ah_shard_queue_depth{shard=\"1\"} "),
            "{body}"
        );

        let (code, body) = http_get(&addr, "/status").unwrap();
        assert_eq!(code, 200);
        let doc: Value = serde_json::parse(&body).expect("status is valid JSON");
        let sessions = doc.get("sessions").and_then(Value::as_array).unwrap();
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.get("phase").and_then(Value::as_str), Some("tuning"));
        assert_eq!(
            s.get("strategy").and_then(Value::as_str),
            Some("nelder-mead")
        );
        assert!(s.get("evaluations").and_then(Value::as_u64).unwrap() > 0);
        assert!(s.get("best_cost").and_then(Value::as_f64).is_some());
        let simplex = s.get("search").and_then(|v| v.get("simplex")).unwrap();
        assert!(!simplex
            .get("vertex_costs")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
        let depths = doc
            .get("server")
            .and_then(|v| v.get("queue_depths"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(depths.len(), 2);

        let (code, body) = http_get(&addr, "/trials?n=5").unwrap();
        assert_eq!(code, 200);
        let trials: Value = serde_json::parse(&body).unwrap();
        let trials = trials.as_array().unwrap();
        assert!(!trials.is_empty() && trials.len() <= 5, "{}", trials.len());

        let (code, body) = http_get(&addr, "/spans?n=3").unwrap();
        assert_eq!(code, 200);
        let spans: Value = serde_json::parse(&body).unwrap();
        assert!(spans.as_array().unwrap().len() <= 3);

        let (code, body) = http_get(&addr, "/trace").unwrap();
        assert_eq!(code, 200);
        let trace: Value = serde_json::parse(&body).unwrap();
        let events = trace
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("trace has traceEvents");
        // The shard workers produced ShardHandle spans for every request.
        assert!(events
            .iter()
            .any(|e| { e.get("name").and_then(Value::as_str) == Some("shard_handle") }));

        let (code, _) = http_get(&addr, "/nope").unwrap();
        assert_eq!(code, 404);

        observe.stop();
        server.shutdown();
    }

    #[test]
    fn status_reflects_a_converging_simplex() {
        let (server, observe) = observed_server();
        let addr = observe.addr().to_string();

        let spread_at = |label: &str| -> f64 {
            let (code, body) = http_get(&addr, "/status").expect("GET /status");
            assert_eq!(code, 200, "{label}");
            let doc: Value = serde_json::parse(&body).unwrap();
            let sessions = doc.get("sessions").and_then(Value::as_array).unwrap();
            sessions[0]
                .get("search")
                .and_then(|s| s.get("simplex"))
                .and_then(|s| s.get("spread"))
                .and_then(Value::as_f64)
                .unwrap_or(f64::INFINITY)
        };

        let client = server.connect("converge-app").unwrap();
        client.add_param(Param::int("x", 0, 80, 1)).unwrap();
        client.add_param(Param::int("y", 0, 80, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 150,
                    seed: 9,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        // Probe /status after every report: the live spread trace must show
        // the simplex tightening. (It is not monotone — a collapse restart
        // re-spreads the simplex — so compare early against the best seen.)
        let mut spreads = Vec::new();
        loop {
            let fetch = client.fetch().unwrap();
            if fetch.finished {
                break;
            }
            let x = fetch.config.int("x").unwrap() as f64;
            let y = fetch.config.int("y").unwrap() as f64;
            client
                .report((x - 9.0).powi(2) + (y - 44.0).powi(2))
                .unwrap();
            spreads.push(spread_at("mid-campaign"));
        }
        let early = spreads
            .iter()
            .copied()
            .find(|s| s.is_finite() && *s > 0.0)
            .expect("a live simplex was visible mid-campaign");
        let tightest = spreads.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            tightest < early / 10.0,
            "spread should shrink as the simplex converges: \
             early={early} tightest={tightest}"
        );

        observe.stop();
        server.shutdown();
    }

    #[test]
    fn unknown_methods_and_disabled_telemetry_are_handled() {
        let server = HarmonyServer::start_with(1);
        let observe = server.observe("127.0.0.1:0").unwrap();
        let addr = observe.addr().to_string();

        // Disabled telemetry still yields a well-formed (all-zero) exposition.
        let (code, body) = http_get(&addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("ah_trials_proposed_total 0"), "{body}");

        // Non-GET is refused, and the index lists the routes.
        let mut stream = TcpStream::connect(&addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let (code, body) = http_get(&addr, "/").unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("/status"), "{body}");

        observe.stop();
        server.shutdown();
    }
}

//! The Harmony tuning server (paper Figure 1).
//!
//! The server hosts the *adaptation controller*: it manages the tunable
//! parameters registered by one or more client applications and steers their
//! values with a search strategy. Applications talk to the server through
//! the small message [`protocol`]; in this in-process implementation the
//! transport is a crossbeam channel, and every message type is
//! serde-serializable so the same protocol could run over a socket.
//!
//! Multiple clients may tune concurrently and independently — the paper's
//! Active Harmony "tries to coordinate the use of resources by multiple
//! libraries and applications". Client sessions are partitioned across a
//! pool of shard worker threads keyed by client id, so independent clients
//! never serialize behind one dispatcher: each shard owns its slice of the
//! client table and drains its own request channel.

pub mod client;
pub mod protocol;
pub mod tcp;

pub use client::HarmonyClient;
pub use tcp::{TcpHarmonyClient, TcpHarmonyServer};

use crate::error::{HarmonyError, Result};
use crate::session::{Trial, TuningSession};
use crate::space::SearchSpaceBuilder;
use crate::strategy::{GridSearch, NelderMead, ParallelRankOrder, RandomSearch};
use crossbeam::channel::{unbounded, Receiver, SendError, Sender};
use parking_lot::Mutex;
use protocol::{Envelope, FetchedTrial, Reply, Request, StrategyKind};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-client state inside the server.
enum ClientState {
    /// Still declaring parameters.
    Building {
        app: String,
        builder: Option<SearchSpaceBuilder>,
    },
    /// Space sealed; tuning in progress.
    Tuning {
        /// Application label, kept for diagnostics.
        #[allow(dead_code)]
        app: String,
        session: Box<TuningSession>,
        /// Fetched-but-unreported trials, oldest first. A plain `Fetch`
        /// re-serves and a plain `Report` resolves the oldest; batch
        /// messages address entries by iteration token.
        outstanding: VecDeque<Trial>,
    },
}

/// One shard of the client table: the worker thread that owns it drains
/// `tx`'s receiving end; the mutex makes the table observable from the
/// outside (diagnostics) without funnelling through the worker.
struct Shard {
    tx: Sender<Envelope>,
    clients: Arc<Mutex<HashMap<u64, ClientState>>>,
}

/// Cheap, cloneable route to the shard workers (used by every client
/// handle and by the TCP front-end).
#[derive(Clone)]
pub(crate) struct ServerBus {
    shards: Arc<Vec<Shard>>,
    next_id: Arc<AtomicU64>,
}

impl ServerBus {
    fn shard_of(&self, client: u64) -> usize {
        (client % self.shards.len() as u64) as usize
    }

    /// Deliver an envelope to the shard owning its client. `Register`
    /// allocates the client id here so the id and the routing decision
    /// always agree; the addressed shard then creates the state under
    /// that id.
    pub(crate) fn send(&self, mut env: Envelope) -> std::result::Result<(), SendError<Envelope>> {
        if matches!(env.req, Request::Register { .. }) {
            env.client = self.next_id.fetch_add(1, Ordering::Relaxed);
        }
        let shard = self.shard_of(env.client);
        self.shards[shard].tx.send(env)
    }

    /// Total registered clients across all shards.
    pub(crate) fn client_count(&self) -> usize {
        self.shards.iter().map(|s| s.clients.lock().len()).sum()
    }
}

/// Handle to a running Harmony server (a pool of shard worker threads).
pub struct HarmonyServer {
    bus: ServerBus,
    handles: Vec<JoinHandle<()>>,
}

impl HarmonyServer {
    /// Start the server with one shard worker per available core (capped —
    /// per-message work is small, so shards beyond the core count only add
    /// memory and wake-up churn).
    pub fn start() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::start_with(cores.clamp(1, 8))
    }

    /// Start the server with an explicit number of shard workers.
    /// Clients are partitioned by `client_id % shards`.
    pub fn start_with(shards: usize) -> Self {
        let n = shards.max(1);
        let mut pool = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            let clients = Arc::new(Mutex::new(HashMap::new()));
            let worker_table = Arc::clone(&clients);
            let handle = std::thread::Builder::new()
                .name(format!("harmony-shard-{i}"))
                .spawn(move || Self::worker_loop(rx, worker_table))
                .expect("spawn harmony shard worker");
            pool.push(Shard { tx, clients });
            handles.push(handle);
        }
        HarmonyServer {
            bus: ServerBus {
                shards: Arc::new(pool),
                next_id: Arc::new(AtomicU64::new(1)),
            },
            handles,
        }
    }

    fn worker_loop(rx: Receiver<Envelope>, clients: Arc<Mutex<HashMap<u64, ClientState>>>) {
        for Envelope { client, req, reply } in rx.iter() {
            if matches!(req, Request::Shutdown) {
                let _ = reply.send(Reply::Ok);
                break;
            }
            let out = {
                let mut table = clients.lock();
                Self::handle(&mut table, client, req)
            };
            let _ = reply.send(out);
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.bus.shards.len()
    }

    /// Number of registered clients across all shards.
    pub fn client_count(&self) -> usize {
        self.bus.client_count()
    }

    /// The routing bus (used by [`HarmonyClient`] and the TCP front-end).
    pub(crate) fn bus(&self) -> ServerBus {
        self.bus.clone()
    }

    /// Connect a new client application.
    pub fn connect(&self, app: impl Into<String>) -> Result<HarmonyClient> {
        HarmonyClient::register(self.bus(), app.into())
    }

    /// Stop every shard worker. Subsequent client calls fail with
    /// [`HarmonyError::Disconnected`].
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        // Tell every shard to stop, then wait: collect acknowledgements
        // first so shards wind down in parallel.
        let mut acks = Vec::with_capacity(self.bus.shards.len());
        for shard in self.bus.shards.iter() {
            let (tx, rx) = crossbeam::channel::bounded(1);
            if shard
                .tx
                .send(Envelope {
                    client: 0,
                    req: Request::Shutdown,
                    reply: tx,
                })
                .is_ok()
            {
                acks.push(rx);
            }
        }
        for rx in acks {
            let _ = rx.recv();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn build_strategy(kind: &StrategyKind) -> Box<dyn crate::strategy::SearchStrategy> {
        match kind {
            StrategyKind::NelderMead => Box::new(NelderMead::default()),
            StrategyKind::Random => Box::new(RandomSearch::new()),
            StrategyKind::Grid { target } => Box::new(GridSearch::new(*target)),
            StrategyKind::Pro => Box::new(ParallelRankOrder::default()),
        }
    }

    /// Reply for a fetch against a finished session: the best found.
    fn finished_reply(session: &TuningSession) -> Reply {
        match session.best() {
            Some((cfg, _)) => Reply::Config {
                config: cfg.clone(),
                iteration: session.history().len(),
                finished: true,
            },
            None => Reply::Error {
                message: "session finished with no evaluations".into(),
            },
        }
    }

    fn handle(clients: &mut HashMap<u64, ClientState>, client: u64, req: Request) -> Reply {
        match req {
            Request::Register { app } => {
                // The id was allocated by the bus; it routed here, so this
                // shard owns it.
                clients.insert(
                    client,
                    ClientState::Building {
                        app,
                        builder: Some(SearchSpaceBuilder::default()),
                    },
                );
                Reply::Registered { client_id: client }
            }
            Request::Shutdown => Reply::Ok, // handled by the loop
            other => {
                let Some(state) = clients.get_mut(&client) else {
                    return Reply::Error {
                        message: HarmonyError::UnknownClient(client).to_string(),
                    };
                };
                Self::handle_for_client(state, other)
            }
        }
    }

    fn handle_for_client(state: &mut ClientState, req: Request) -> Reply {
        match (state, req) {
            (ClientState::Building { builder, .. }, Request::AddParam { param }) => {
                if let Err(e) = param.validate() {
                    return Reply::Error {
                        message: e.to_string(),
                    };
                }
                let b = builder.take().expect("builder present while building");
                *builder = Some(b.param(param));
                Reply::Ok
            }
            (ClientState::Building { builder, .. }, Request::AddMonotoneChain { names }) => {
                let b = builder.take().expect("builder present while building");
                *builder = Some(b.constraint(crate::constraint::MonotoneChain::new(names)));
                Reply::Ok
            }
            (state_ref @ ClientState::Building { .. }, Request::Seal { options, strategy }) => {
                let ClientState::Building { app, builder } = state_ref else {
                    unreachable!("matched Building above");
                };
                let b = builder.take().expect("builder present while building");
                match b.build() {
                    Ok(space) => {
                        let session =
                            TuningSession::new(space, Self::build_strategy(&strategy), options);
                        *state_ref = ClientState::Tuning {
                            app: std::mem::take(app),
                            session: Box::new(session),
                            outstanding: VecDeque::new(),
                        };
                        Reply::Ok
                    }
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                }
            }
            (
                ClientState::Tuning {
                    session,
                    outstanding,
                    ..
                },
                Request::Fetch,
            ) => {
                if session.stop_reason().is_some() {
                    // Trials fetched before the stop were dropped by the
                    // session; forget them here too.
                    outstanding.clear();
                    return Self::finished_reply(session);
                }
                if let Some(trial) = outstanding.front() {
                    // Re-fetch without report: hand out the oldest
                    // unreported trial again.
                    return Reply::Config {
                        config: trial.config.clone(),
                        iteration: trial.iteration,
                        finished: false,
                    };
                }
                match session.suggest() {
                    Some(trial) => {
                        let reply = Reply::Config {
                            config: trial.config.clone(),
                            iteration: trial.iteration,
                            finished: false,
                        };
                        outstanding.push_back(trial);
                        reply
                    }
                    None => Self::finished_reply(session),
                }
            }
            (
                ClientState::Tuning {
                    session,
                    outstanding,
                    ..
                },
                Request::Report { cost, wall_time },
            ) => match outstanding.pop_front() {
                Some(trial) => match session.report_timed(trial, cost, wall_time) {
                    Ok(()) => Reply::Ok,
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                },
                None => Reply::Error {
                    message: "report without an outstanding fetch".into(),
                },
            },
            (
                ClientState::Tuning {
                    session,
                    outstanding,
                    ..
                },
                Request::FetchBatch { max },
            ) => {
                if session.stop_reason().is_some() {
                    outstanding.clear();
                    return Reply::Configs {
                        trials: Vec::new(),
                        finished: true,
                    };
                }
                // Unreported trials first (so a re-fetch after a lost reply
                // converges), then top up with fresh proposals.
                let mut trials: Vec<FetchedTrial> = outstanding
                    .iter()
                    .take(max)
                    .map(|t| FetchedTrial {
                        config: t.config.clone(),
                        iteration: t.iteration,
                    })
                    .collect();
                if trials.len() < max {
                    for t in session.suggest_batch(max - trials.len()) {
                        trials.push(FetchedTrial {
                            config: t.config.clone(),
                            iteration: t.iteration,
                        });
                        outstanding.push_back(t);
                    }
                }
                let finished = trials.is_empty() && session.stop_reason().is_some();
                if finished {
                    outstanding.clear();
                }
                Reply::Configs { trials, finished }
            }
            (
                ClientState::Tuning {
                    session,
                    outstanding,
                    ..
                },
                Request::ReportBatch { reports },
            ) => {
                for r in reports {
                    if session.stop_reason().is_some() {
                        // Stopped mid-batch: the remaining results belong
                        // to trials the session already dropped.
                        break;
                    }
                    let Some(pos) = outstanding.iter().position(|t| t.iteration == r.iteration)
                    else {
                        return Reply::Error {
                            message: HarmonyError::Protocol(format!(
                                "report for unknown trial {}",
                                r.iteration
                            ))
                            .to_string(),
                        };
                    };
                    let trial = outstanding.remove(pos).expect("position found above");
                    if let Err(e) = session.report_timed(trial, r.cost, r.wall_time) {
                        return Reply::Error {
                            message: e.to_string(),
                        };
                    }
                }
                if session.stop_reason().is_some() {
                    outstanding.clear();
                }
                Reply::Ok
            }
            (ClientState::Tuning { session, .. }, Request::QueryBest) => {
                let best = session.best().map(|(c, v)| (c.clone(), v));
                Reply::Best { best }
            }
            (
                ClientState::Building { .. },
                Request::Fetch
                | Request::Report { .. }
                | Request::FetchBatch { .. }
                | Request::ReportBatch { .. },
            ) => Reply::Error {
                message: HarmonyError::Protocol("space not sealed yet".into()).to_string(),
            },
            (ClientState::Building { .. }, Request::QueryBest) => Reply::Best { best: None },
            (ClientState::Tuning { .. }, _) => Reply::Error {
                message: HarmonyError::Protocol("space already sealed".into()).to_string(),
            },
            (ClientState::Building { .. }, Request::Register { .. })
            | (ClientState::Building { .. }, Request::Shutdown) => Reply::Error {
                message: HarmonyError::Protocol("unexpected message".into()).to_string(),
            },
        }
    }
}

impl Drop for HarmonyServer {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.do_shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::session::SessionOptions;

    #[test]
    fn single_client_tunes_a_bowl() {
        let server = HarmonyServer::start();
        let client = server.connect("bowl").unwrap();
        client.add_param(Param::int("x", 0, 60, 1)).unwrap();
        client.add_param(Param::int("y", 0, 60, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 120,
                    seed: 21,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        loop {
            let fetch = client.fetch().unwrap();
            if fetch.finished {
                break;
            }
            let x = fetch.config.int("x").unwrap() as f64;
            let y = fetch.config.int("y").unwrap() as f64;
            client
                .report((x - 42.0).powi(2) + (y - 13.0).powi(2))
                .unwrap();
        }
        let (best, cost) = client.best().unwrap().unwrap();
        assert!(cost <= 8.0, "cost={cost} best={best}");
        server.shutdown();
    }

    #[test]
    fn two_clients_tune_independently() {
        let server = HarmonyServer::start();
        let c1 = server.connect("app1").unwrap();
        let c2 = server.connect("app2").unwrap();
        for c in [&c1, &c2] {
            c.add_param(Param::int("n", 0, 100, 1)).unwrap();
            c.seal(
                SessionOptions {
                    max_evaluations: 60,
                    seed: 22,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        }
        // Interleave the two clients' loops.
        let mut done1 = false;
        let mut done2 = false;
        while !(done1 && done2) {
            if !done1 {
                let f = c1.fetch().unwrap();
                if f.finished {
                    done1 = true;
                } else {
                    let n = f.config.int("n").unwrap() as f64;
                    c1.report((n - 10.0).abs()).unwrap();
                }
            }
            if !done2 {
                let f = c2.fetch().unwrap();
                if f.finished {
                    done2 = true;
                } else {
                    let n = f.config.int("n").unwrap() as f64;
                    c2.report((n - 90.0).abs()).unwrap();
                }
            }
        }
        let (b1, v1) = c1.best().unwrap().unwrap();
        let (b2, v2) = c2.best().unwrap().unwrap();
        assert!(v1 <= 2.0, "client1 best {b1} cost {v1}");
        assert!(v2 <= 2.0, "client2 best {b2} cost {v2}");
        assert!((b1.int("n").unwrap() - 10).abs() <= 2);
        assert!((b2.int("n").unwrap() - 90).abs() <= 2);
        server.shutdown();
    }

    #[test]
    fn protocol_violations_are_reported() {
        let server = HarmonyServer::start();
        let client = server.connect("app").unwrap();
        // Fetch before seal.
        assert!(client.fetch().is_err());
        client.add_param(Param::int("n", 0, 10, 1)).unwrap();
        client
            .seal(SessionOptions::default(), StrategyKind::Random)
            .unwrap();
        // Report without fetch.
        assert!(client.report(1.0).is_err());
        // Adding params after seal fails.
        assert!(client.add_param(Param::int("m", 0, 1, 1)).is_err());
        server.shutdown();
    }

    #[test]
    fn refetch_returns_same_trial_until_reported() {
        let server = HarmonyServer::start();
        let client = server.connect("app").unwrap();
        client.add_param(Param::int("n", 0, 100, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 10,
                    seed: 1,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        let a = client.fetch().unwrap();
        let b = client.fetch().unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.iteration, b.iteration);
        client.report(1.0).unwrap();
        server.shutdown();
    }

    #[test]
    fn clients_work_from_other_threads() {
        let server = HarmonyServer::start();
        let mut joins = Vec::new();
        for t in 0..4 {
            let client = server.connect(format!("app{t}")).unwrap();
            joins.push(std::thread::spawn(move || {
                client.add_param(Param::int("n", 0, 50, 1)).unwrap();
                client
                    .seal(
                        SessionOptions {
                            max_evaluations: 30,
                            seed: t,
                            ..Default::default()
                        },
                        StrategyKind::NelderMead,
                    )
                    .unwrap();
                loop {
                    let f = client.fetch().unwrap();
                    if f.finished {
                        break;
                    }
                    let n = f.config.int("n").unwrap() as f64;
                    client.report((n - t as f64 * 10.0).abs()).unwrap();
                }
                let (_, cost) = client.best().unwrap().unwrap();
                assert!(cost <= 3.0);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.shutdown();
    }
}

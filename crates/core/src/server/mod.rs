//! The Harmony tuning server (paper Figure 1).
//!
//! The server hosts the *adaptation controller*: it manages the tunable
//! parameters registered by one or more client applications and steers their
//! values with a search strategy. Applications talk to the server through
//! the small message [`protocol`]; in this in-process implementation the
//! transport is a crossbeam channel, and every message type is
//! serde-serializable so the same protocol could run over a socket.
//!
//! Multiple clients may tune concurrently and independently — the paper's
//! Active Harmony "tries to coordinate the use of resources by multiple
//! libraries and applications"; each client gets its own session keyed by a
//! client id.

pub mod client;
pub mod protocol;
pub mod tcp;

pub use client::HarmonyClient;
pub use tcp::{TcpHarmonyClient, TcpHarmonyServer};

use crate::error::{HarmonyError, Result};
use crate::session::{Trial, TuningSession};
use crate::space::SearchSpaceBuilder;
use crate::strategy::{GridSearch, NelderMead, ParallelRankOrder, RandomSearch};
use crossbeam::channel::{unbounded, Sender};
use protocol::{Envelope, Reply, Request, StrategyKind};
use std::collections::HashMap;
use std::thread::JoinHandle;

/// Per-client state inside the server.
enum ClientState {
    /// Still declaring parameters.
    Building {
        app: String,
        builder: Option<SearchSpaceBuilder>,
    },
    /// Space sealed; tuning in progress.
    Tuning {
        /// Application label, kept for diagnostics.
        #[allow(dead_code)]
        app: String,
        session: Box<TuningSession>,
        outstanding: Option<Trial>,
    },
}

/// Handle to a running Harmony server thread.
pub struct HarmonyServer {
    req_tx: Sender<Envelope>,
    handle: Option<JoinHandle<()>>,
}

impl HarmonyServer {
    /// Start the server on its own thread.
    pub fn start() -> Self {
        let (req_tx, req_rx) = unbounded::<Envelope>();
        let handle = std::thread::Builder::new()
            .name("harmony-server".into())
            .spawn(move || {
                let mut next_id: u64 = 1;
                let mut clients: HashMap<u64, ClientState> = HashMap::new();
                for Envelope { client, req, reply } in req_rx.iter() {
                    if matches!(req, Request::Shutdown) {
                        let _ = reply.send(Reply::Ok);
                        break;
                    }
                    let out = Self::handle(&mut next_id, &mut clients, client, req);
                    let _ = reply.send(out);
                }
            })
            .expect("spawn harmony server thread");
        HarmonyServer {
            req_tx,
            handle: Some(handle),
        }
    }

    /// The raw request channel (used by [`HarmonyClient`]).
    pub(crate) fn sender(&self) -> Sender<Envelope> {
        self.req_tx.clone()
    }

    /// Connect a new client application.
    pub fn connect(&self, app: impl Into<String>) -> Result<HarmonyClient> {
        HarmonyClient::register(self.sender(), app.into())
    }

    /// Stop the server thread. Subsequent client calls fail with
    /// [`HarmonyError::Disconnected`].
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        if self
            .req_tx
            .send(Envelope {
                client: 0,
                req: Request::Shutdown,
                reply: tx,
            })
            .is_ok()
        {
            let _ = rx.recv();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    fn build_strategy(kind: &StrategyKind) -> Box<dyn crate::strategy::SearchStrategy> {
        match kind {
            StrategyKind::NelderMead => Box::new(NelderMead::default()),
            StrategyKind::Random => Box::new(RandomSearch::new()),
            StrategyKind::Grid { target } => Box::new(GridSearch::new(*target)),
            StrategyKind::Pro => Box::new(ParallelRankOrder::default()),
        }
    }

    fn handle(
        next_id: &mut u64,
        clients: &mut HashMap<u64, ClientState>,
        client: u64,
        req: Request,
    ) -> Reply {
        match req {
            Request::Register { app } => {
                let id = *next_id;
                *next_id += 1;
                clients.insert(
                    id,
                    ClientState::Building {
                        app,
                        builder: Some(SearchSpaceBuilder::default()),
                    },
                );
                Reply::Registered { client_id: id }
            }
            Request::Shutdown => Reply::Ok, // handled by the loop
            other => {
                let Some(state) = clients.get_mut(&client) else {
                    return Reply::Error {
                        message: HarmonyError::UnknownClient(client).to_string(),
                    };
                };
                Self::handle_for_client(state, other)
            }
        }
    }

    fn handle_for_client(state: &mut ClientState, req: Request) -> Reply {
        match (state, req) {
            (ClientState::Building { builder, .. }, Request::AddParam { param }) => {
                if let Err(e) = param.validate() {
                    return Reply::Error {
                        message: e.to_string(),
                    };
                }
                let b = builder.take().expect("builder present while building");
                *builder = Some(b.param(param));
                Reply::Ok
            }
            (ClientState::Building { builder, .. }, Request::AddMonotoneChain { names }) => {
                let b = builder.take().expect("builder present while building");
                *builder = Some(b.constraint(crate::constraint::MonotoneChain::new(names)));
                Reply::Ok
            }
            (state_ref @ ClientState::Building { .. }, Request::Seal { options, strategy }) => {
                let ClientState::Building { app, builder } = state_ref else {
                    unreachable!("matched Building above");
                };
                let b = builder.take().expect("builder present while building");
                match b.build() {
                    Ok(space) => {
                        let session =
                            TuningSession::new(space, Self::build_strategy(&strategy), options);
                        *state_ref = ClientState::Tuning {
                            app: std::mem::take(app),
                            session: Box::new(session),
                            outstanding: None,
                        };
                        Reply::Ok
                    }
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                }
            }
            (
                ClientState::Tuning {
                    session,
                    outstanding,
                    ..
                },
                Request::Fetch,
            ) => {
                if let Some(trial) = outstanding {
                    // Re-fetch without report: hand out the same trial.
                    return Reply::Config {
                        config: trial.config.clone(),
                        iteration: trial.iteration,
                        finished: false,
                    };
                }
                match session.suggest() {
                    Some(trial) => {
                        let reply = Reply::Config {
                            config: trial.config.clone(),
                            iteration: trial.iteration,
                            finished: false,
                        };
                        *outstanding = Some(trial);
                        reply
                    }
                    None => match session.best() {
                        Some((cfg, _)) => Reply::Config {
                            config: cfg.clone(),
                            iteration: session.history().len(),
                            finished: true,
                        },
                        None => Reply::Error {
                            message: "session finished with no evaluations".into(),
                        },
                    },
                }
            }
            (
                ClientState::Tuning {
                    session,
                    outstanding,
                    ..
                },
                Request::Report { cost, wall_time },
            ) => match outstanding.take() {
                Some(trial) => match session.report_timed(trial, cost, wall_time) {
                    Ok(()) => Reply::Ok,
                    Err(e) => Reply::Error {
                        message: e.to_string(),
                    },
                },
                None => Reply::Error {
                    message: "report without an outstanding fetch".into(),
                },
            },
            (ClientState::Tuning { session, .. }, Request::QueryBest) => {
                let best = session.best().map(|(c, v)| (c.clone(), v));
                Reply::Best { best }
            }
            (ClientState::Building { .. }, Request::Fetch | Request::Report { .. }) => {
                Reply::Error {
                    message: HarmonyError::Protocol("space not sealed yet".into()).to_string(),
                }
            }
            (ClientState::Building { .. }, Request::QueryBest) => Reply::Best { best: None },
            (ClientState::Tuning { .. }, _) => Reply::Error {
                message: HarmonyError::Protocol("space already sealed".into()).to_string(),
            },
            (ClientState::Building { .. }, Request::Register { .. })
            | (ClientState::Building { .. }, Request::Shutdown) => Reply::Error {
                message: HarmonyError::Protocol("unexpected message".into()).to_string(),
            },
        }
    }
}

impl Drop for HarmonyServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.do_shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::session::SessionOptions;

    #[test]
    fn single_client_tunes_a_bowl() {
        let server = HarmonyServer::start();
        let client = server.connect("bowl").unwrap();
        client.add_param(Param::int("x", 0, 60, 1)).unwrap();
        client.add_param(Param::int("y", 0, 60, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 120,
                    seed: 21,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        loop {
            let fetch = client.fetch().unwrap();
            if fetch.finished {
                break;
            }
            let x = fetch.config.int("x").unwrap() as f64;
            let y = fetch.config.int("y").unwrap() as f64;
            client
                .report((x - 42.0).powi(2) + (y - 13.0).powi(2))
                .unwrap();
        }
        let (best, cost) = client.best().unwrap().unwrap();
        assert!(cost <= 8.0, "cost={cost} best={best}");
        server.shutdown();
    }

    #[test]
    fn two_clients_tune_independently() {
        let server = HarmonyServer::start();
        let c1 = server.connect("app1").unwrap();
        let c2 = server.connect("app2").unwrap();
        for c in [&c1, &c2] {
            c.add_param(Param::int("n", 0, 100, 1)).unwrap();
            c.seal(
                SessionOptions {
                    max_evaluations: 60,
                    seed: 22,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        }
        // Interleave the two clients' loops.
        let mut done1 = false;
        let mut done2 = false;
        while !(done1 && done2) {
            if !done1 {
                let f = c1.fetch().unwrap();
                if f.finished {
                    done1 = true;
                } else {
                    let n = f.config.int("n").unwrap() as f64;
                    c1.report((n - 10.0).abs()).unwrap();
                }
            }
            if !done2 {
                let f = c2.fetch().unwrap();
                if f.finished {
                    done2 = true;
                } else {
                    let n = f.config.int("n").unwrap() as f64;
                    c2.report((n - 90.0).abs()).unwrap();
                }
            }
        }
        let (b1, v1) = c1.best().unwrap().unwrap();
        let (b2, v2) = c2.best().unwrap().unwrap();
        assert!(v1 <= 2.0, "client1 best {b1} cost {v1}");
        assert!(v2 <= 2.0, "client2 best {b2} cost {v2}");
        assert!((b1.int("n").unwrap() - 10).abs() <= 2);
        assert!((b2.int("n").unwrap() - 90).abs() <= 2);
        server.shutdown();
    }

    #[test]
    fn protocol_violations_are_reported() {
        let server = HarmonyServer::start();
        let client = server.connect("app").unwrap();
        // Fetch before seal.
        assert!(client.fetch().is_err());
        client.add_param(Param::int("n", 0, 10, 1)).unwrap();
        client
            .seal(SessionOptions::default(), StrategyKind::Random)
            .unwrap();
        // Report without fetch.
        assert!(client.report(1.0).is_err());
        // Adding params after seal fails.
        assert!(client.add_param(Param::int("m", 0, 1, 1)).is_err());
        server.shutdown();
    }

    #[test]
    fn refetch_returns_same_trial_until_reported() {
        let server = HarmonyServer::start();
        let client = server.connect("app").unwrap();
        client.add_param(Param::int("n", 0, 100, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 10,
                    seed: 1,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        let a = client.fetch().unwrap();
        let b = client.fetch().unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.iteration, b.iteration);
        client.report(1.0).unwrap();
        server.shutdown();
    }

    #[test]
    fn clients_work_from_other_threads() {
        let server = HarmonyServer::start();
        let mut joins = Vec::new();
        for t in 0..4 {
            let client = server.connect(format!("app{t}")).unwrap();
            joins.push(std::thread::spawn(move || {
                client.add_param(Param::int("n", 0, 50, 1)).unwrap();
                client
                    .seal(
                        SessionOptions {
                            max_evaluations: 30,
                            seed: t,
                            ..Default::default()
                        },
                        StrategyKind::NelderMead,
                    )
                    .unwrap();
                loop {
                    let f = client.fetch().unwrap();
                    if f.finished {
                        break;
                    }
                    let n = f.config.int("n").unwrap() as f64;
                    client.report((n - t as f64 * 10.0).abs()).unwrap();
                }
                let (_, cost) = client.best().unwrap().unwrap();
                assert!(cost <= 3.0);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.shutdown();
    }
}

//! The Harmony tuning server (paper Figure 1).
//!
//! The server hosts the *adaptation controller*: it manages the tunable
//! parameters registered by one or more client applications and steers their
//! values with a search strategy. Applications talk to the server through
//! the small message [`protocol`]; in this in-process implementation the
//! transport is a crossbeam channel, and every message type is
//! serde-serializable so the same protocol could run over a socket.
//!
//! Multiple clients may tune concurrently and independently — the paper's
//! Active Harmony "tries to coordinate the use of resources by multiple
//! libraries and applications". Client sessions are partitioned across a
//! pool of shard worker threads keyed by client id, so independent clients
//! never serialize behind one dispatcher: each shard owns its slice of the
//! session table and drains its own request channel.
//!
//! # Sessions, members, and fault tolerance
//!
//! A `Register` founds a *session* (one search space, one strategy) whose id
//! equals the founding client's id. Further connections may [`Request::Attach`]
//! to that session as additional *members*: they share the outstanding-trial
//! queue, so a PRO round can be measured by a worker pool, and a worker that
//! crashed can rejoin under a fresh client id. Every outstanding trial
//! records its owner and issue time; a trial is *requeued* (made claimable
//! by any member) when its owner leaves, is evicted for missing its
//! [`ServerConfig::client_ttl`], or holds the trial past
//! [`ServerConfig::trial_deadline`]. Because [`TuningSession`] applies
//! reports strictly in proposal order and costs are functions of the
//! configuration alone, requeue + re-measure cannot perturb the search
//! trajectory: the history stays bit-identical to a fault-free serial run.
//!
//! # Tenancy and federation
//!
//! Every `Register`/`Attach` may carry a *tenant* label (empty means the
//! `"default"` tenant). Shard workers dispatch envelopes with deficit
//! round-robin across tenants ([`DRR_QUANTUM`] messages per turn), so a
//! thousand-client swarm from one team cannot starve another team's
//! two-client session, and [`ServerConfig::tenant_max_sessions`] /
//! [`ServerConfig::tenant_max_inflight`] bound what any one tenant can hold
//! open — refusals are the typed [`Reply::QuotaExceeded`], which clients
//! treat as retryable backpressure. Per-tenant accounting lives in the
//! shared [`TenantRegistry`] the observability plane snapshots for
//! `/status`.
//!
//! Servers federate through their performance stores: with
//! [`ServerConfig::sync_peers`] set, a background anti-entropy thread
//! periodically pulls each peer's record log over the observer HTTP plane
//! (`GET /store/log?from=SEQ`) and merges it into the local store
//! ([`crate::store::PerfStore::merge_records`]: first write wins, so the
//! pull is idempotent and peers may sync each other in any order). Merged
//! records feed the same read-through cache as local measurements, which is
//! what makes fleet-wide warm starts work: a server can answer a
//! configuration it never measured itself.

pub mod client;
pub mod event_loop;
pub mod observe;
pub mod poll;
pub mod protocol;
pub mod tcp;

pub use client::HarmonyClient;
pub use event_loop::EventLoopConfig;
pub use observe::ObserveHandle;
pub use tcp::{TcpClientOptions, TcpHarmonyClient, TcpHarmonyServer, TcpTransport};

use crate::error::{HarmonyError, Result};
use crate::session::{Trial, TuningSession};
use crate::space::SearchSpaceBuilder;
use crate::store::{space_fingerprint, SharedStore, StoreRecord};
use crate::telemetry::slo::SloRule;
use crate::telemetry::timeseries::TimeSeries;
use crate::telemetry::{Counter, Latency, SpanKind, Telemetry, TenantMetric, TrialStage};
use crossbeam::channel::{unbounded, Receiver, SendError, Sender};
use parking_lot::Mutex;
use protocol::{sanitize_measurement, Envelope, FetchedTrial, Reply, ReplySink, Request};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The tenant label members get when they declare none.
pub const DEFAULT_TENANT: &str = "default";

/// Messages one tenant may consume per deficit-round-robin turn of a shard
/// worker before the turn passes to the next tenant with queued work.
pub const DRR_QUANTUM: u64 = 8;

/// Anti-entropy pull period used when [`ServerConfig::sync_interval`] is
/// left at `Duration::ZERO`.
const DEFAULT_SYNC_INTERVAL: Duration = Duration::from_millis(500);

/// Map an empty (wire-default) tenant label to [`DEFAULT_TENANT`].
fn canonical_tenant(tenant: &str) -> &str {
    if tenant.is_empty() {
        DEFAULT_TENANT
    } else {
        tenant
    }
}

/// Live accounting for one tenant, shared between shard workers, quota
/// checks, and the observability plane. All counters are relaxed: they
/// gate admission and feed `/status`, neither of which needs ordering.
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Sessions with at least one live member.
    pub sessions: AtomicU64,
    /// Fetched-but-unreported trials across the tenant's sessions.
    pub inflight: AtomicU64,
    /// Envelopes waiting in shard dispatch queues.
    pub queued: AtomicU64,
    /// Envelopes handled to completion since the server started.
    pub served: AtomicU64,
}

/// Registry of per-tenant stats, cloned into every shard worker and the
/// observability plane. The mutex guards only the name→stats map; the
/// stats themselves are lock-free atomics.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    inner: Arc<Mutex<HashMap<String, Arc<TenantStats>>>>,
}

impl TenantRegistry {
    /// The stats cell for `tenant`, created on first use.
    pub fn stats(&self, tenant: &str) -> Arc<TenantStats> {
        Arc::clone(self.inner.lock().entry(tenant.to_string()).or_default())
    }

    /// Snapshot of every tenant ever seen, sorted by name:
    /// `(name, sessions, inflight, queued, served)`.
    pub fn snapshot(&self) -> Vec<(String, u64, u64, u64, u64)> {
        let mut rows: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    s.sessions.load(Ordering::Relaxed),
                    s.inflight.load(Ordering::Relaxed),
                    s.queued.load(Ordering::Relaxed),
                    s.served.load(Ordering::Relaxed),
                )
            })
            .collect();
        rows.sort();
        rows
    }
}

/// Liveness, quota, and federation policy of a running server.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Shard worker threads; `0` means one per available core (capped at 8 —
    /// per-message work is small, so shards beyond the core count only add
    /// memory and wake-up churn).
    pub shards: usize,
    /// Requeue an outstanding trial whose owner has held it longer than
    /// this. `None` (default) disables the deadline: trials are requeued
    /// only when their owner leaves or is evicted.
    pub trial_deadline: Option<Duration>,
    /// Evict a session member not heard from for longer than this,
    /// requeueing its outstanding trials. Any request counts as liveness;
    /// idle clients holding long measurements should send
    /// [`Request::Heartbeat`]. `None` (default) disables eviction.
    pub client_ttl: Option<Duration>,
    /// Telemetry handle every shard records onto (disabled by default —
    /// recording costs nothing until a caller passes an enabled handle).
    pub telemetry: Telemetry,
    /// Shared performance store ([`crate::store`]). When set, every shard
    /// consults it before dispatching a trial — a configuration whose cost
    /// is already on record is answered server-side
    /// ([`TuningSession::report_stored`]) without a round trip to any
    /// client — and records every fresh measurement into it.
    pub store: Option<SharedStore>,
    /// Most sessions one tenant may hold open at once; a `Register` past
    /// the cap is refused with [`Reply::QuotaExceeded`]. `None` (default)
    /// leaves founding unbounded.
    pub tenant_max_sessions: Option<usize>,
    /// Most fetched-but-unreported trials one tenant may hold across its
    /// sessions. A `Fetch` that would issue a fresh trial past the cap is
    /// refused with [`Reply::QuotaExceeded`]; a `FetchBatch` has its fresh
    /// top-up clamped and is refused only when it gathered nothing at all.
    /// Re-fetches and requeue claims are always exempt — they never grow
    /// the tenant's holdings. `None` (default) leaves issuance unbounded.
    pub tenant_max_inflight: Option<usize>,
    /// Per-tenant accounting, shared by shards and the observability
    /// plane. The default (empty) registry fills in lazily as tenants
    /// appear.
    pub tenants: TenantRegistry,
    /// Observer-plane addresses (`host:port`) of peer servers whose store
    /// logs this server should pull and merge on an anti-entropy interval.
    /// Requires [`store`](Self::store); empty (default) disables syncing.
    /// `GET /fleet` on the observe plane also aggregates these peers'
    /// `/status` + `/metrics` into one fleet view.
    pub sync_peers: Vec<String>,
    /// Anti-entropy pull period; `Duration::ZERO` (default) means 500 ms.
    pub sync_interval: Duration,
    /// Retained time-series over [`telemetry`](Self::telemetry). When set,
    /// [`HarmonyServer::start_with_config`] registers a
    /// `shard_queue_depth` gauge on it, and the observe plane serves
    /// `GET /metrics/history` and the `GET /healthz` SLO engine from it.
    /// The caller owns sampling (see
    /// [`TimeSeries::start_sampler`]). `None` (default) disables both
    /// endpoints.
    pub timeseries: Option<TimeSeries>,
    /// SLO rules `GET /healthz` evaluates against
    /// [`timeseries`](Self::timeseries) (grammar:
    /// [`crate::telemetry::slo`]). Empty (default) means `/healthz` always
    /// answers 200 with zero rules.
    pub slo_rules: Vec<SloRule>,
}

/// Upper bound on store-served trials resolved inside one fetch request.
/// A warm store plus a generous evaluation budget could otherwise keep one
/// request serving cached costs for the session's whole remaining budget
/// while the client waits; past the cap the trial is handed to the client
/// even on a hit, which is always correct (merely slower).
const MAX_SERVED_PER_REQUEST: usize = 1024;

/// One member of a session.
struct Member {
    last_seen: Instant,
}

/// A trial handed to some member and not yet reported.
struct OutstandingTrial {
    trial: Trial,
    /// Client currently measuring it; `0` = unowned (requeued), claimable
    /// by any member's fetch.
    owner: u64,
    /// When the current owner received it (deadline eviction clock).
    issued: Instant,
    /// The trial was requeued by fault handling at least once; recorded as
    /// provenance when its measurement reaches the performance store.
    requeued: bool,
}

/// Declaration-vs-tuning phase of a session.
enum SessionPhase {
    /// Still declaring parameters.
    Building { builder: Option<SearchSpaceBuilder> },
    /// Space sealed; tuning in progress.
    Tuning {
        session: Box<TuningSession>,
        /// Fetched-but-unreported trials, oldest first.
        outstanding: VecDeque<OutstandingTrial>,
        /// Highest iteration token ever issued; a report for an unknown
        /// token at or below it is a stale duplicate (the trial was
        /// requeued, re-measured, and already applied) and is ignored.
        issued_high: usize,
        /// [`space_fingerprint`] of the sealed space, the session's store
        /// key alongside the application label.
        fingerprint: u64,
    },
}

/// One tuning session shared by its founder and any attached members.
struct SessionState {
    /// Application label: diagnostics, and the performance-store key.
    app: String,
    phase: SessionPhase,
    /// Live members by client id.
    members: HashMap<u64, Member>,
    /// Tenant the founder registered under; attached members inherit it for
    /// quota accounting regardless of the label they attached with.
    tenant: String,
    /// The tenant's shared accounting cell, resolved once at founding.
    tenant_stats: Arc<TenantStats>,
}

/// Per-tenant FIFO queues a shard worker serves in deficit-round-robin
/// order: each tenant with queued work gets [`DRR_QUANTUM`] credits per
/// turn (plus any carried deficit), so one tenant's flood waits behind at
/// most a quantum of every other tenant's traffic instead of the whole
/// backlog. Invariant: a tenant is in `ring` iff its queue is nonempty.
#[derive(Default)]
struct DrrQueues {
    queues: HashMap<String, VecDeque<Envelope>>,
    ring: VecDeque<String>,
    deficit: HashMap<String, u64>,
    pending: usize,
}

impl DrrQueues {
    fn enqueue(&mut self, tenant: String, env: Envelope) {
        let q = self.queues.entry(tenant.clone()).or_default();
        if q.is_empty() {
            self.ring.push_back(tenant);
        }
        q.push_back(env);
        self.pending += 1;
    }

    /// Take the next tenant's turn: up to quantum-plus-deficit envelopes
    /// from the head of the ring. `None` when nothing is queued.
    fn take_turn(&mut self) -> Option<(String, Vec<Envelope>)> {
        let tenant = self.ring.pop_front()?;
        let credit = self.deficit.remove(&tenant).unwrap_or(0) + DRR_QUANTUM;
        let q = self
            .queues
            .get_mut(&tenant)
            .expect("ring tenants have a queue");
        let take = (credit as usize).min(q.len());
        let batch: Vec<Envelope> = q.drain(..take).collect();
        self.pending -= batch.len();
        if q.is_empty() {
            // Classic DRR: an emptied queue forfeits unused credit.
            self.queues.remove(&tenant);
        } else {
            self.deficit.insert(tenant.clone(), credit - take as u64);
            self.ring.push_back(tenant.clone());
        }
        Some((tenant, batch))
    }
}

/// Worker-local dispatch state: the DRR queues plus the client→tenant map
/// used to classify envelopes that don't carry a tenant label themselves.
#[derive(Default)]
struct ShardDispatch {
    drr: DrrQueues,
    client_tenants: HashMap<u64, String>,
    stats: HashMap<String, Arc<TenantStats>>,
}

impl ShardDispatch {
    /// Classify and enqueue one envelope; a `Shutdown` is intercepted and
    /// its reply sink returned instead.
    fn intake(&mut self, env: Envelope, registry: &TenantRegistry) -> Option<ReplySink> {
        if matches!(env.req, Request::Shutdown) {
            return Some(env.reply);
        }
        let tenant = match &env.req {
            Request::Register { tenant, .. } | Request::Attach { tenant, .. } => {
                let t = canonical_tenant(tenant).to_string();
                self.client_tenants.insert(env.client, t.clone());
                t
            }
            Request::Leave => self
                .client_tenants
                .remove(&env.client)
                .unwrap_or_else(|| DEFAULT_TENANT.to_string()),
            _ => self
                .client_tenants
                .get(&env.client)
                .cloned()
                .unwrap_or_else(|| DEFAULT_TENANT.to_string()),
        };
        self.tenant_stats(&tenant, registry)
            .queued
            .fetch_add(1, Ordering::Relaxed);
        self.drr.enqueue(tenant, env);
        None
    }

    fn tenant_stats(&mut self, tenant: &str, registry: &TenantRegistry) -> Arc<TenantStats> {
        Arc::clone(
            self.stats
                .entry(tenant.to_string())
                .or_insert_with(|| registry.stats(tenant)),
        )
    }
}

/// The slice of server state one shard worker owns.
#[derive(Default)]
struct ShardTable {
    /// Sessions keyed by founder client id.
    sessions: HashMap<u64, SessionState>,
    /// Client id → session id, for every live member on this shard.
    clients: HashMap<u64, u64>,
}

/// One shard of the session table: the worker thread that owns it drains
/// `tx`'s receiving end; the mutex makes the table observable from the
/// outside (diagnostics) without funnelling through the worker.
struct Shard {
    tx: Sender<Envelope>,
    table: Arc<Mutex<ShardTable>>,
    /// Envelopes sent but not yet picked up by the worker — the live queue
    /// depth the observability plane reports per shard. (The vendored
    /// channel has no `len()`; one relaxed counter is cheaper anyway.)
    depth: Arc<AtomicU64>,
}

/// Cheap, cloneable route to the shard workers (used by every client
/// handle and by the TCP front-end).
#[derive(Clone)]
pub(crate) struct ServerBus {
    shards: Arc<Vec<Shard>>,
    next_seq: Arc<AtomicU64>,
}

impl ServerBus {
    fn shard_of(&self, client: u64) -> usize {
        (client % self.shards.len() as u64) as usize
    }

    /// Allocate a client id that routes to `shard`: with `n` shards, id
    /// `n*(seq+1) + shard` is unique per `seq` and satisfies
    /// `id % n == shard`, so an `Attach` can be given an id living on the
    /// same shard as the session it joins.
    fn allocate(&self, shard: u64) -> u64 {
        let n = self.shards.len() as u64;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        n * (seq + 1) + shard
    }

    /// Deliver an envelope to the shard owning its client. `Register` and
    /// `Attach` allocate the client id here so the id and the routing
    /// decision always agree; the addressed shard then creates the state
    /// under that id. Registers spread round-robin; attaches must land on
    /// the shard owning their session.
    pub(crate) fn send(&self, mut env: Envelope) -> std::result::Result<(), SendError<Envelope>> {
        let n = self.shards.len() as u64;
        match env.req {
            Request::Register { .. } => {
                let seq = self.next_seq.load(Ordering::Relaxed);
                env.client = self.allocate(seq % n);
            }
            Request::Attach { session, .. } => {
                env.client = self.allocate(session % n);
            }
            _ => {}
        }
        let shard = self.shard_of(env.client);
        self.shards[shard].depth.fetch_add(1, Ordering::Relaxed);
        let sent = self.shards[shard].tx.send(env);
        if sent.is_err() {
            self.shards[shard].depth.fetch_sub(1, Ordering::Relaxed);
        }
        sent
    }

    /// Per-shard queue depths, for the observability plane.
    pub(crate) fn queue_depths(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .collect()
    }

    /// Total live members across all shards.
    pub(crate) fn client_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table.lock().clients.len())
            .sum()
    }
}

/// Handle to a running Harmony server (a pool of shard worker threads,
/// plus one anti-entropy puller per [`ServerConfig::sync_peers`] entry).
pub struct HarmonyServer {
    bus: ServerBus,
    handles: Vec<JoinHandle<()>>,
    sync_stop: Arc<AtomicBool>,
    sync_handles: Vec<JoinHandle<()>>,
    config: ServerConfig,
}

impl HarmonyServer {
    /// Start the server with the default [`ServerConfig`]: one shard worker
    /// per available core, no deadlines, no eviction.
    pub fn start() -> Self {
        Self::start_with_config(ServerConfig::default())
    }

    /// Start the server with an explicit number of shard workers.
    /// Clients are partitioned by `client_id % shards`.
    pub fn start_with(shards: usize) -> Self {
        Self::start_with_config(ServerConfig {
            shards,
            ..Default::default()
        })
    }

    /// Start the server with full control over sharding, per-trial
    /// deadlines, and member liveness eviction.
    pub fn start_with_config(config: ServerConfig) -> Self {
        let n = if config.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, 8)
        } else {
            config.shards
        };
        let mut pool = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            let table = Arc::new(Mutex::new(ShardTable::default()));
            let depth = Arc::new(AtomicU64::new(0));
            let worker_table = Arc::clone(&table);
            let worker_depth = Arc::clone(&depth);
            let cfg = config.clone();
            let handle = std::thread::Builder::new()
                .name(format!("harmony-shard-{i}"))
                .spawn(move || Self::worker_loop(i, rx, worker_table, worker_depth, cfg))
                .expect("spawn harmony shard worker");
            pool.push(Shard { tx, table, depth });
            handles.push(handle);
        }
        let sync_stop = Arc::new(AtomicBool::new(false));
        let mut sync_handles = Vec::new();
        if let Some(store) = config.store.clone() {
            let interval = if config.sync_interval.is_zero() {
                DEFAULT_SYNC_INTERVAL
            } else {
                config.sync_interval
            };
            for peer in config.sync_peers.iter().cloned() {
                let store = store.clone();
                let stop = Arc::clone(&sync_stop);
                let handle = std::thread::Builder::new()
                    .name(format!("harmony-sync-{peer}"))
                    .spawn(move || Self::sync_loop(peer, store, interval, stop))
                    .expect("spawn harmony sync puller");
                sync_handles.push(handle);
            }
        }
        let bus = ServerBus {
            shards: Arc::new(pool),
            next_seq: Arc::new(AtomicU64::new(0)),
        };
        if let Some(series) = &config.timeseries {
            // Stock server gauges: total queued envelopes across shards
            // (the SLO engine's `shard_queue_depth`) and the store's
            // unflushed record count (`store_unsynced`, flush lag).
            let gauge_bus = bus.clone();
            series.register_gauge("shard_queue_depth", move || {
                gauge_bus.queue_depths().iter().sum::<u64>() as f64
            });
            if let Some(store) = config.store.clone() {
                series.register_gauge("store_unsynced", move || store.unsynced() as f64);
            }
        }
        HarmonyServer {
            bus,
            handles,
            sync_stop,
            sync_handles,
            config,
        }
    }

    /// Anti-entropy puller for one peer: fetch the peer's store log from
    /// our high-water mark, merge it (first write wins, so re-pulls are
    /// harmless), advance the mark to what actually parsed, sleep. A peer
    /// that is down, speaks garbage, or compacted beneath our mark just
    /// means a retry — the header's `start` re-anchors us after a
    /// compaction, and an unparseable tail is refetched next round.
    fn sync_loop(peer: String, store: SharedStore, interval: Duration, stop: Arc<AtomicBool>) {
        let mut from = 0usize;
        while !stop.load(Ordering::Relaxed) {
            if let Ok((200, body)) = observe::http_get(&peer, &format!("/store/log?from={from}")) {
                let mut lines = body.lines();
                let header = lines
                    .next()
                    .and_then(|l| serde_json::from_str::<observe::StoreLogHeader>(l).ok())
                    .filter(|h| h.kind == observe::STORE_LOG_KIND);
                if let Some(h) = header {
                    let mut records = Vec::new();
                    for line in lines {
                        if line.is_empty() {
                            continue;
                        }
                        match serde_json::from_str::<StoreRecord>(line) {
                            Ok(r) => records.push(r),
                            Err(_) => break, // torn tail: refetch next round
                        }
                    }
                    from = h.start + records.len();
                    if !records.is_empty() {
                        let _ = store.merge_records(records);
                    }
                }
            }
            // Sleep in short ticks so shutdown is never held hostage by a
            // long interval.
            let mut slept = Duration::ZERO;
            while slept < interval && !stop.load(Ordering::Relaxed) {
                let tick = Duration::from_millis(20).min(interval - slept);
                std::thread::sleep(tick);
                slept += tick;
            }
        }
    }

    /// Shard worker: pull envelopes off the channel into per-tenant DRR
    /// queues, then serve one tenant turn at a time. A `Shutdown` stops
    /// intake; queued envelopes are still served before the acknowledgement
    /// (matching the old FIFO loop, where everything sent before the
    /// shutdown was processed first).
    fn worker_loop(
        shard: usize,
        rx: Receiver<Envelope>,
        table: Arc<Mutex<ShardTable>>,
        depth: Arc<AtomicU64>,
        cfg: ServerConfig,
    ) {
        let mut dispatch = ShardDispatch::default();
        let mut shutdown_ack: Option<ReplySink> = None;
        'outer: loop {
            if shutdown_ack.is_none() {
                // Block only when idle; otherwise drain whatever is ready
                // so fairness is decided over everything that has arrived.
                if dispatch.drr.pending == 0 {
                    match rx.recv() {
                        Ok(env) => {
                            if let Some(ack) = dispatch.intake(env, &cfg.tenants) {
                                depth.fetch_sub(1, Ordering::Relaxed);
                                shutdown_ack = Some(ack);
                            }
                        }
                        Err(_) => break 'outer, // bus gone, nothing queued
                    }
                }
                while shutdown_ack.is_none() {
                    match rx.try_recv() {
                        Ok(env) => {
                            if let Some(ack) = dispatch.intake(env, &cfg.tenants) {
                                depth.fetch_sub(1, Ordering::Relaxed);
                                shutdown_ack = Some(ack);
                            }
                        }
                        Err(_) => break, // empty or disconnected: serve what we have
                    }
                }
            }
            match dispatch.drr.take_turn() {
                Some((tenant, batch)) => {
                    let stats = dispatch.tenant_stats(&tenant, &cfg.tenants);
                    for env in batch {
                        depth.fetch_sub(1, Ordering::Relaxed);
                        stats.queued.fetch_sub(1, Ordering::Relaxed);
                        stats.served.fetch_add(1, Ordering::Relaxed);
                        let wait = env.queued_at.elapsed();
                        cfg.telemetry.observe(Latency::ShardQueueWait, wait);
                        cfg.telemetry.tenant_add(
                            &tenant,
                            TenantMetric::QueueWaitUs,
                            u64::try_from(wait.as_micros()).unwrap_or(u64::MAX),
                        );
                        let Envelope {
                            client, req, reply, ..
                        } = env;
                        let span = cfg.telemetry.span_begin(
                            SpanKind::ShardHandle,
                            0,
                            "shard",
                            shard as u64,
                        );
                        let out = {
                            let mut table = table.lock();
                            Self::handle(&mut table, &cfg, client, req)
                        };
                        cfg.telemetry.span_end(span);
                        reply.deliver(out);
                    }
                }
                None => {
                    if let Some(ack) = shutdown_ack.take() {
                        ack.deliver(Reply::Ok);
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.bus.shards.len()
    }

    /// Number of live members across all shards.
    pub fn client_count(&self) -> usize {
        self.bus.client_count()
    }

    /// The routing bus (used by [`HarmonyClient`] and the TCP front-end).
    pub(crate) fn bus(&self) -> ServerBus {
        self.bus.clone()
    }

    /// The configuration this server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Start the observability plane: an HTTP responder on `addr` serving
    /// `/metrics`, `/status`, `/trials` and `/spans` from a dedicated thread.
    /// Snapshots take each shard lock only briefly; the tuning hot path is
    /// untouched. Bind to port 0 to let the OS pick; the bound address is on
    /// the returned [`ObserveHandle`].
    pub fn observe(&self, addr: &str) -> std::io::Result<ObserveHandle> {
        observe::start(addr, self.bus.clone(), self.config.clone())
    }

    /// Connect a new client application (founds a fresh session) under the
    /// default tenant.
    pub fn connect(&self, app: impl Into<String>) -> Result<HarmonyClient> {
        self.connect_as(app, "")
    }

    /// Connect a new client application under an explicit tenant label.
    /// Refused with [`HarmonyError::QuotaExceeded`] when the tenant is at
    /// its [`ServerConfig::tenant_max_sessions`] cap.
    pub fn connect_as(
        &self,
        app: impl Into<String>,
        tenant: impl Into<String>,
    ) -> Result<HarmonyClient> {
        HarmonyClient::register(self.bus(), app.into(), tenant.into())
    }

    /// Join an existing session as an additional member (worker pools,
    /// crash rejoin). The session id comes from the founder's
    /// [`HarmonyClient::session_id`].
    pub fn attach(&self, session: u64) -> Result<HarmonyClient> {
        self.attach_as(session, "")
    }

    /// Join an existing session under an explicit tenant label; the label
    /// scopes this member's dispatch fairness, while quota accounting
    /// stays with the session's founding tenant.
    pub fn attach_as(&self, session: u64, tenant: impl Into<String>) -> Result<HarmonyClient> {
        HarmonyClient::attach(self.bus(), session, tenant.into())
    }

    /// Stop every shard worker. Subsequent client calls fail with
    /// [`HarmonyError::Disconnected`].
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        // Stop the anti-entropy pullers first so nothing merges into the
        // store while it is being flushed for the last time.
        self.sync_stop.store(true, Ordering::Relaxed);
        for h in self.sync_handles.drain(..) {
            let _ = h.join();
        }
        // Tell every shard to stop, then wait: collect acknowledgements
        // first so shards wind down in parallel.
        let mut acks = Vec::with_capacity(self.bus.shards.len());
        for shard in self.bus.shards.iter() {
            let (tx, rx) = crossbeam::channel::bounded(1);
            shard.depth.fetch_add(1, Ordering::Relaxed);
            if shard
                .tx
                .send(Envelope::new(0, Request::Shutdown, tx))
                .is_ok()
            {
                acks.push(rx);
            } else {
                shard.depth.fetch_sub(1, Ordering::Relaxed);
            }
        }
        for rx in acks {
            let _ = rx.recv();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Reply for a fetch against a finished session: the best found.
    fn finished_reply(session: &TuningSession) -> Reply {
        match session.best() {
            Some((cfg, _)) => Reply::Config {
                config: cfg.clone(),
                iteration: session.history().len(),
                finished: true,
            },
            None => Reply::err("session finished with no evaluations"),
        }
    }

    /// Requeue deadline-expired trials and evict silent members. Runs on
    /// every message addressed to a tuning session, with the sender's
    /// `last_seen` already refreshed (a client can never evict itself by
    /// talking to the server).
    fn sweep(
        clients: &mut HashMap<u64, u64>,
        state: &mut SessionState,
        cfg: &ServerConfig,
        now: Instant,
    ) {
        let telemetry = &cfg.telemetry;
        let SessionPhase::Tuning { outstanding, .. } = &mut state.phase else {
            return;
        };
        // Members evicted by *this* sweep, so requeues below can name the
        // right cause (an eviction vs. an explicit leave).
        let mut evicted: HashSet<u64> = HashSet::new();
        if let Some(ttl) = cfg.client_ttl {
            let dead: Vec<u64> = state
                .members
                .iter()
                .filter(|(_, m)| now.duration_since(m.last_seen) > ttl)
                .map(|(&id, _)| id)
                .collect();
            for id in dead {
                state.members.remove(&id);
                clients.remove(&id);
                telemetry.inc(Counter::MembersEvicted);
                telemetry.event(TrialStage::Evicted, 0, id, Some("ttl_expired"));
                evicted.insert(id);
            }
            if !evicted.is_empty() && state.members.is_empty() {
                // Eviction emptied the session: release its tenant slot
                // (an Attach revival re-claims it).
                state.tenant_stats.sessions.fetch_sub(1, Ordering::Relaxed);
            }
        }
        for t in outstanding.iter_mut() {
            if t.owner == 0 {
                continue;
            }
            let expired = cfg
                .trial_deadline
                .is_some_and(|d| now.duration_since(t.issued) > d);
            if expired || !state.members.contains_key(&t.owner) {
                let cause = if expired {
                    "trial_deadline"
                } else if evicted.contains(&t.owner) {
                    "owner_evicted"
                } else {
                    "owner_left"
                };
                telemetry.inc(Counter::TrialsRequeued);
                telemetry.event(
                    TrialStage::Requeued,
                    t.trial.iteration,
                    t.owner,
                    Some(cause),
                );
                t.owner = 0;
                t.requeued = true;
            }
        }
    }

    fn handle(table: &mut ShardTable, cfg: &ServerConfig, client: u64, req: Request) -> Reply {
        let now = Instant::now();
        let ShardTable { sessions, clients } = table;
        match req {
            Request::Register { app, tenant } => {
                // The id was allocated by the bus; it routed here, so this
                // shard owns it. The new session's id is the founder's id.
                let tenant = canonical_tenant(&tenant).to_string();
                let stats = cfg.tenants.stats(&tenant);
                // Claim-then-check keeps the cap exact when shards race.
                let prior = stats.sessions.fetch_add(1, Ordering::Relaxed);
                if let Some(max) = cfg.tenant_max_sessions {
                    if prior >= max as u64 {
                        stats.sessions.fetch_sub(1, Ordering::Relaxed);
                        cfg.telemetry.inc(Counter::QuotaRefusals);
                        cfg.telemetry
                            .tenant_add(&tenant, TenantMetric::QuotaRefusals, 1);
                        return Reply::QuotaExceeded { tenant };
                    }
                }
                sessions.insert(
                    client,
                    SessionState {
                        app,
                        phase: SessionPhase::Building {
                            builder: Some(SearchSpaceBuilder::default()),
                        },
                        members: HashMap::from([(client, Member { last_seen: now })]),
                        tenant,
                        tenant_stats: stats,
                    },
                );
                clients.insert(client, client);
                Reply::Registered {
                    client_id: client,
                    session: client,
                }
            }
            Request::Attach { session, tenant: _ } => {
                let Some(state) = sessions.get_mut(&session) else {
                    return Reply::err(format!("unknown session {session}"));
                };
                if state.members.is_empty() {
                    // Reviving an abandoned session counts against the
                    // founding tenant again.
                    state.tenant_stats.sessions.fetch_add(1, Ordering::Relaxed);
                }
                state.members.insert(client, Member { last_seen: now });
                clients.insert(client, session);
                Reply::Registered {
                    client_id: client,
                    session,
                }
            }
            Request::Shutdown => Reply::Ok, // handled by the loop
            other => {
                let Some(&session_id) = clients.get(&client) else {
                    return Reply::err(HarmonyError::UnknownClient(client).to_string());
                };
                let state = sessions
                    .get_mut(&session_id)
                    .expect("member maps to a live session");
                if let Some(m) = state.members.get_mut(&client) {
                    m.last_seen = now;
                }
                if matches!(other, Request::Leave) {
                    clients.remove(&client);
                    state.members.remove(&client);
                    if state.members.is_empty() {
                        state.tenant_stats.sessions.fetch_sub(1, Ordering::Relaxed);
                    }
                    // sweep() requeues the leaver's outstanding trials.
                    Self::sweep(clients, state, cfg, now);
                    return Reply::Ok;
                }
                Self::sweep(clients, state, cfg, now);
                Self::handle_for_session(state, cfg, client, session_id, other, now)
            }
        }
    }

    /// Forget every outstanding trial, returning the tenant's in-flight
    /// claim on them. Used wherever a finished session drops its queue.
    fn drain_outstanding(outstanding: &mut VecDeque<OutstandingTrial>, stats: &TenantStats) {
        stats
            .inflight
            .fetch_sub(outstanding.len() as u64, Ordering::Relaxed);
        outstanding.clear();
    }

    /// True when issuing one more fresh trial would put the tenant past
    /// its in-flight cap.
    fn tenant_inflight_full(cfg: &ServerConfig, stats: &TenantStats) -> bool {
        cfg.tenant_max_inflight
            .is_some_and(|max| stats.inflight.load(Ordering::Relaxed) >= max as u64)
    }

    fn handle_for_session(
        state: &mut SessionState,
        cfg: &ServerConfig,
        client: u64,
        session_id: u64,
        req: Request,
        now: Instant,
    ) -> Reply {
        let telemetry = &cfg.telemetry;
        if matches!(req, Request::Heartbeat) {
            return Reply::Ok; // last_seen already refreshed by the caller
        }
        // Disjoint borrows: the store key (`app`) and tenant accounting are
        // read while `phase` is borrowed mutably by the match below.
        let SessionState {
            app,
            phase,
            tenant,
            tenant_stats,
            ..
        } = state;
        match (&mut *phase, req) {
            (SessionPhase::Building { builder }, Request::AddParam { param }) => {
                if let Err(e) = param.validate() {
                    return Reply::err(e.to_string());
                }
                let b = builder.take().expect("builder present while building");
                *builder = Some(b.param(param));
                Reply::Ok
            }
            (SessionPhase::Building { builder }, Request::AddMonotoneChain { names }) => {
                let b = builder.take().expect("builder present while building");
                *builder = Some(b.constraint(crate::constraint::MonotoneChain::new(names)));
                Reply::Ok
            }
            (SessionPhase::Building { builder }, Request::Seal { options, strategy }) => {
                let b = builder.take().expect("builder present while building");
                match b.build() {
                    Ok(space) => {
                        let fingerprint = space_fingerprint(&space);
                        let mut session = TuningSession::new(space, strategy.build(), options);
                        session.set_telemetry(telemetry.clone());
                        *phase = SessionPhase::Tuning {
                            session: Box::new(session),
                            outstanding: VecDeque::new(),
                            issued_high: 0,
                            fingerprint,
                        };
                        Reply::Ok
                    }
                    Err(e) => Reply::err(e.to_string()),
                }
            }
            (
                SessionPhase::Tuning {
                    session,
                    outstanding,
                    issued_high,
                    fingerprint,
                },
                Request::Fetch,
            ) => {
                if session.stop_reason().is_some() {
                    // Trials fetched before the stop were dropped by the
                    // session; forget them here too.
                    Self::drain_outstanding(outstanding, tenant_stats);
                    return Self::finished_reply(session);
                }
                // Re-fetch without report: hand out this client's oldest
                // unreported trial again.
                if let Some(t) = outstanding.iter().find(|t| t.owner == client) {
                    telemetry.inc(Counter::TrialsFetched);
                    telemetry.event(
                        TrialStage::Fetched,
                        t.trial.iteration,
                        client,
                        Some("refetch"),
                    );
                    return Reply::Config {
                        config: t.trial.config.clone(),
                        iteration: t.trial.iteration,
                        finished: false,
                    };
                }
                // Claim the oldest requeued trial of a departed/expired
                // owner before asking the strategy for anything new.
                if let Some(t) = outstanding.iter_mut().find(|t| t.owner == 0) {
                    t.owner = client;
                    t.issued = now;
                    telemetry.inc(Counter::TrialsFetched);
                    telemetry.event(
                        TrialStage::Fetched,
                        t.trial.iteration,
                        client,
                        Some("requeue_claim"),
                    );
                    return Reply::Config {
                        config: t.trial.config.clone(),
                        iteration: t.trial.iteration,
                        finished: false,
                    };
                }
                // Issuing a fresh trial grows the tenant's in-flight
                // holdings; past the cap the fetch is refused with the
                // typed retryable frame. (Re-fetch and requeue claims
                // above never grow holdings and stay exempt.)
                if Self::tenant_inflight_full(cfg, tenant_stats) {
                    telemetry.inc(Counter::QuotaRefusals);
                    telemetry.tenant_add(tenant, TenantMetric::QuotaRefusals, 1);
                    return Reply::QuotaExceeded {
                        tenant: tenant.clone(),
                    };
                }
                // Proposals whose cost is already on record are answered
                // from the store without leaving the server; the loop runs
                // until a proposal actually needs measuring (or the budget
                // runs out under the served costs).
                let mut served = 0usize;
                loop {
                    match session.suggest_batch(1).pop() {
                        Some(trial) => {
                            *issued_high = (*issued_high).max(trial.iteration);
                            if served < MAX_SERVED_PER_REQUEST {
                                if let Some(hit) = cfg.store.as_ref().and_then(|s| {
                                    s.lookup(app, *fingerprint, &trial.config.cache_key())
                                }) {
                                    served += 1;
                                    let _ = session.report_stored(trial, hit.cost);
                                    continue;
                                }
                            }
                            telemetry.inc(Counter::TrialsFetched);
                            telemetry.event(TrialStage::Fetched, trial.iteration, client, None);
                            let reply = Reply::Config {
                                config: trial.config.clone(),
                                iteration: trial.iteration,
                                finished: false,
                            };
                            tenant_stats.inflight.fetch_add(1, Ordering::Relaxed);
                            outstanding.push_back(OutstandingTrial {
                                trial,
                                owner: client,
                                issued: now,
                                requeued: false,
                            });
                            break reply;
                        }
                        None if session.stop_reason().is_some() => {
                            Self::drain_outstanding(outstanding, tenant_stats);
                            break Self::finished_reply(session);
                        }
                        // The strategy is waiting on another member's report.
                        None => {
                            break Reply::busy(
                                "no trial available until outstanding reports arrive",
                            )
                        }
                    }
                }
            }
            (
                SessionPhase::Tuning {
                    session,
                    outstanding,
                    fingerprint,
                    ..
                },
                Request::Report { cost, wall_time },
            ) => {
                let Some(pos) = outstanding.iter().position(|t| t.owner == client) else {
                    return Reply::err("report without an outstanding fetch");
                };
                let t = outstanding.remove(pos).expect("position found above");
                tenant_stats.inflight.fetch_sub(1, Ordering::Relaxed);
                let (cost, wall_time, clamped) = sanitize_measurement(cost, wall_time);
                if clamped {
                    telemetry.inc(Counter::NonFiniteCostsSanitized);
                }
                let config = cfg.store.as_ref().map(|_| t.trial.config.clone());
                let iteration = t.trial.iteration;
                telemetry.tenant_add(tenant, TenantMetric::Reports, 1);
                match session.report_timed(t.trial, cost, wall_time) {
                    Ok(()) => {
                        telemetry.tenant_add(tenant, TenantMetric::Evaluations, 1);
                        // Advisory write: a full disk must not fail the
                        // report the session already accepted.
                        if let (Some(store), Some(config)) = (&cfg.store, config) {
                            let _ = store.insert(
                                StoreRecord::new(
                                    app.clone(),
                                    *fingerprint,
                                    config,
                                    cost,
                                    wall_time,
                                )
                                .with_provenance(session_id, iteration)
                                .with_flags(t.requeued, false),
                            );
                        }
                        Reply::Ok
                    }
                    Err(e) => Reply::err(e.to_string()),
                }
            }
            (
                SessionPhase::Tuning {
                    session,
                    outstanding,
                    issued_high,
                    fingerprint,
                },
                Request::FetchBatch { max },
            ) => {
                if session.stop_reason().is_some() {
                    Self::drain_outstanding(outstanding, tenant_stats);
                    return Reply::Configs {
                        trials: Vec::new(),
                        finished: true,
                    };
                }
                // This client's unreported trials first (so a re-fetch after
                // a lost reply converges), then requeued trials of departed
                // owners, then top up with fresh proposals.
                let mut trials: Vec<FetchedTrial> = Vec::new();
                for t in outstanding.iter().filter(|t| t.owner == client).take(max) {
                    telemetry.inc(Counter::TrialsFetched);
                    telemetry.event(
                        TrialStage::Fetched,
                        t.trial.iteration,
                        client,
                        Some("refetch"),
                    );
                    trials.push(FetchedTrial {
                        config: t.trial.config.clone(),
                        iteration: t.trial.iteration,
                    });
                }
                for t in outstanding.iter_mut().filter(|t| t.owner == 0) {
                    if trials.len() >= max {
                        break;
                    }
                    t.owner = client;
                    t.issued = now;
                    telemetry.inc(Counter::TrialsFetched);
                    telemetry.event(
                        TrialStage::Fetched,
                        t.trial.iteration,
                        client,
                        Some("requeue_claim"),
                    );
                    trials.push(FetchedTrial {
                        config: t.trial.config.clone(),
                        iteration: t.trial.iteration,
                    });
                }
                // Top up with fresh proposals, resolving store-known ones
                // server-side. Each served cost may unlock further
                // proposals, so keep asking while the store keeps
                // progressing the search; without a store this degenerates
                // to the old single `suggest_batch` pass. The tenant's
                // in-flight cap clamps how many fresh trials may be issued
                // (store-served hits complete immediately and don't count);
                // suggestions are requested only up to the clamp so no
                // proposal is ever pulled from the strategy and dropped.
                let fresh_budget = cfg.tenant_max_inflight.map_or(usize::MAX, |cap| {
                    (cap as u64).saturating_sub(tenant_stats.inflight.load(Ordering::Relaxed))
                        as usize
                });
                let mut served = 0usize;
                let mut fresh = 0usize;
                while trials.len() < max {
                    let want = (max - trials.len()).min(fresh_budget - fresh);
                    if want == 0 {
                        break;
                    }
                    let batch = session.suggest_batch(want);
                    if batch.is_empty() {
                        break;
                    }
                    let mut progressed = false;
                    for trial in batch {
                        *issued_high = (*issued_high).max(trial.iteration);
                        if served < MAX_SERVED_PER_REQUEST {
                            if let Some(hit) = cfg.store.as_ref().and_then(|s| {
                                s.lookup(app, *fingerprint, &trial.config.cache_key())
                            }) {
                                served += 1;
                                progressed = true;
                                let _ = session.report_stored(trial, hit.cost);
                                continue;
                            }
                        }
                        telemetry.inc(Counter::TrialsFetched);
                        telemetry.event(TrialStage::Fetched, trial.iteration, client, None);
                        trials.push(FetchedTrial {
                            config: trial.config.clone(),
                            iteration: trial.iteration,
                        });
                        fresh += 1;
                        tenant_stats.inflight.fetch_add(1, Ordering::Relaxed);
                        outstanding.push_back(OutstandingTrial {
                            trial,
                            owner: client,
                            issued: now,
                            requeued: false,
                        });
                    }
                    if !progressed {
                        break;
                    }
                }
                let finished = trials.is_empty() && session.stop_reason().is_some();
                if finished {
                    Self::drain_outstanding(outstanding, tenant_stats);
                }
                if trials.is_empty() && !finished && fresh_budget == 0 {
                    telemetry.inc(Counter::QuotaRefusals);
                    telemetry.tenant_add(tenant, TenantMetric::QuotaRefusals, 1);
                    return Reply::QuotaExceeded {
                        tenant: tenant.clone(),
                    };
                }
                Reply::Configs { trials, finished }
            }
            (
                SessionPhase::Tuning {
                    session,
                    outstanding,
                    issued_high,
                    fingerprint,
                },
                Request::ReportBatch { reports },
            ) => {
                // Accumulated store writes for the whole batch: one locked
                // append instead of one per trial, so attaching a store
                // does not un-amortize what batching bought.
                let mut recorded: Vec<StoreRecord> = Vec::new();
                for r in reports {
                    if session.stop_reason().is_some() {
                        // Stopped mid-batch: the remaining results belong
                        // to trials the session already dropped.
                        break;
                    }
                    match outstanding
                        .iter()
                        .position(|t| t.trial.iteration == r.iteration)
                    {
                        Some(pos) => {
                            let t = outstanding.remove(pos).expect("position found above");
                            tenant_stats.inflight.fetch_sub(1, Ordering::Relaxed);
                            let (cost, wall_time, clamped) =
                                sanitize_measurement(r.cost, r.wall_time);
                            if clamped {
                                telemetry.inc(Counter::NonFiniteCostsSanitized);
                            }
                            let config = cfg.store.as_ref().map(|_| t.trial.config.clone());
                            let iteration = t.trial.iteration;
                            telemetry.tenant_add(tenant, TenantMetric::Reports, 1);
                            if let Err(e) = session.report_timed(t.trial, cost, wall_time) {
                                return Reply::err(e.to_string());
                            }
                            telemetry.tenant_add(tenant, TenantMetric::Evaluations, 1);
                            if let Some(config) = config {
                                recorded.push(
                                    StoreRecord::new(
                                        app.clone(),
                                        *fingerprint,
                                        config,
                                        cost,
                                        wall_time,
                                    )
                                    .with_provenance(session_id, iteration)
                                    .with_flags(t.requeued, false),
                                );
                            }
                        }
                        // Stale duplicate: the trial was requeued after an
                        // eviction, re-measured by another member, and its
                        // cost already applied. Costs are functions of the
                        // configuration, so dropping the echo is lossless.
                        None if r.iteration <= *issued_high => {
                            telemetry.inc(Counter::StaleReportsDropped);
                            telemetry.tenant_add(tenant, TenantMetric::Reports, 1);
                            continue;
                        }
                        None => {
                            return Reply::err(
                                HarmonyError::Protocol(format!(
                                    "report for unknown trial {}",
                                    r.iteration
                                ))
                                .to_string(),
                            )
                        }
                    }
                }
                if let (Some(store), false) = (&cfg.store, recorded.is_empty()) {
                    // Advisory, like the serial path: a full disk must not
                    // fail reports the session already accepted.
                    let _ = store.insert_batch(recorded);
                }
                if session.stop_reason().is_some() {
                    Self::drain_outstanding(outstanding, tenant_stats);
                }
                Reply::Ok
            }
            (SessionPhase::Tuning { session, .. }, Request::QueryBest) => {
                let best = session.best().map(|(c, v)| (c.clone(), v));
                Reply::Best { best }
            }
            (SessionPhase::Tuning { session, .. }, Request::QueryHistory) => Reply::History {
                history: session.history().clone(),
                finished: session.stop_reason().is_some(),
            },
            (
                SessionPhase::Building { .. },
                Request::Fetch
                | Request::Report { .. }
                | Request::FetchBatch { .. }
                | Request::ReportBatch { .. }
                | Request::QueryHistory,
            ) => Reply::err(HarmonyError::Protocol("space not sealed yet".into()).to_string()),
            (SessionPhase::Building { .. }, Request::QueryBest) => Reply::Best { best: None },
            (SessionPhase::Tuning { .. }, _) => {
                Reply::err(HarmonyError::Protocol("space already sealed".into()).to_string())
            }
            (SessionPhase::Building { .. }, _) => {
                Reply::err(HarmonyError::Protocol("unexpected message".into()).to_string())
            }
        }
    }
}

impl Drop for HarmonyServer {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.do_shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::server::protocol::{StrategyKind, TrialReport};
    use crate::session::SessionOptions;

    #[test]
    fn single_client_tunes_a_bowl() {
        let server = HarmonyServer::start();
        let client = server.connect("bowl").unwrap();
        client.add_param(Param::int("x", 0, 60, 1)).unwrap();
        client.add_param(Param::int("y", 0, 60, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 120,
                    seed: 21,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        loop {
            let fetch = client.fetch().unwrap();
            if fetch.finished {
                break;
            }
            let x = fetch.config.int("x").unwrap() as f64;
            let y = fetch.config.int("y").unwrap() as f64;
            client
                .report((x - 42.0).powi(2) + (y - 13.0).powi(2))
                .unwrap();
        }
        let (best, cost) = client.best().unwrap().unwrap();
        assert!(cost <= 8.0, "cost={cost} best={best}");
        server.shutdown();
    }

    #[test]
    fn two_clients_tune_independently() {
        let server = HarmonyServer::start();
        let c1 = server.connect("app1").unwrap();
        let c2 = server.connect("app2").unwrap();
        for c in [&c1, &c2] {
            c.add_param(Param::int("n", 0, 100, 1)).unwrap();
            c.seal(
                SessionOptions {
                    max_evaluations: 60,
                    seed: 22,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        }
        // Interleave the two clients' loops.
        let mut done1 = false;
        let mut done2 = false;
        while !(done1 && done2) {
            if !done1 {
                let f = c1.fetch().unwrap();
                if f.finished {
                    done1 = true;
                } else {
                    let n = f.config.int("n").unwrap() as f64;
                    c1.report((n - 10.0).abs()).unwrap();
                }
            }
            if !done2 {
                let f = c2.fetch().unwrap();
                if f.finished {
                    done2 = true;
                } else {
                    let n = f.config.int("n").unwrap() as f64;
                    c2.report((n - 90.0).abs()).unwrap();
                }
            }
        }
        let (b1, v1) = c1.best().unwrap().unwrap();
        let (b2, v2) = c2.best().unwrap().unwrap();
        assert!(v1 <= 2.0, "client1 best {b1} cost {v1}");
        assert!(v2 <= 2.0, "client2 best {b2} cost {v2}");
        assert!((b1.int("n").unwrap() - 10).abs() <= 2);
        assert!((b2.int("n").unwrap() - 90).abs() <= 2);
        server.shutdown();
    }

    #[test]
    fn protocol_violations_are_reported() {
        let server = HarmonyServer::start();
        let client = server.connect("app").unwrap();
        // Fetch before seal.
        assert!(client.fetch().is_err());
        client.add_param(Param::int("n", 0, 10, 1)).unwrap();
        client
            .seal(SessionOptions::default(), StrategyKind::Random)
            .unwrap();
        // Report without fetch.
        assert!(client.report(1.0).is_err());
        // Adding params after seal fails.
        assert!(client.add_param(Param::int("m", 0, 1, 1)).is_err());
        server.shutdown();
    }

    #[test]
    fn refetch_returns_same_trial_until_reported() {
        let server = HarmonyServer::start();
        let client = server.connect("app").unwrap();
        client.add_param(Param::int("n", 0, 100, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 10,
                    seed: 1,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        let a = client.fetch().unwrap();
        let b = client.fetch().unwrap();
        assert_eq!(a.config, b.config);
        assert_eq!(a.iteration, b.iteration);
        client.report(1.0).unwrap();
        server.shutdown();
    }

    #[test]
    fn clients_work_from_other_threads() {
        let server = HarmonyServer::start();
        let mut joins = Vec::new();
        for t in 0..4 {
            let client = server.connect(format!("app{t}")).unwrap();
            joins.push(std::thread::spawn(move || {
                client.add_param(Param::int("n", 0, 50, 1)).unwrap();
                client
                    .seal(
                        SessionOptions {
                            max_evaluations: 30,
                            seed: t,
                            ..Default::default()
                        },
                        StrategyKind::NelderMead,
                    )
                    .unwrap();
                loop {
                    let f = client.fetch().unwrap();
                    if f.finished {
                        break;
                    }
                    let n = f.config.int("n").unwrap() as f64;
                    client.report((n - t as f64 * 10.0).abs()).unwrap();
                }
                let (_, cost) = client.best().unwrap().unwrap();
                assert!(cost <= 3.0);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn attached_member_shares_the_session() {
        let server = HarmonyServer::start_with(3);
        let founder = server.connect("pool").unwrap();
        founder.add_param(Param::int("x", 0, 100, 1)).unwrap();
        founder
            .seal(
                SessionOptions {
                    max_evaluations: 40,
                    seed: 4,
                    ..Default::default()
                },
                StrategyKind::Random,
            )
            .unwrap();
        let worker = server.attach(founder.session_id()).unwrap();
        assert_eq!(worker.session_id(), founder.session_id());
        assert_ne!(worker.id(), founder.id());
        // Both members alternate measuring trials of the one shared search.
        let mut done = false;
        while !done {
            for c in [&founder, &worker] {
                let (trials, finished) = c.fetch_batch(1).unwrap();
                if finished {
                    done = true;
                    break;
                }
                let reports = trials
                    .iter()
                    .map(|t| TrialReport {
                        iteration: t.iteration,
                        cost: t.config.int("x").unwrap() as f64,
                        wall_time: 0.0,
                    })
                    .collect();
                c.report_batch(reports).unwrap();
            }
        }
        // One shared history, 40 fresh evaluations between the two members.
        let (h, finished) = founder.history().unwrap();
        assert!(finished);
        assert_eq!(h.evaluations().iter().filter(|e| !e.cached).count(), 40);
        let (hw, _) = worker.history().unwrap();
        assert_eq!(h.len(), hw.len());
        server.shutdown();
    }

    #[test]
    fn leave_requeues_outstanding_trials_for_other_members() {
        let server = HarmonyServer::start_with(2);
        let founder = server.connect("pool").unwrap();
        founder.add_param(Param::int("x", 0, 100, 1)).unwrap();
        founder
            .seal(
                SessionOptions {
                    max_evaluations: 5,
                    seed: 9,
                    ..Default::default()
                },
                StrategyKind::Random,
            )
            .unwrap();
        let worker = server.attach(founder.session_id()).unwrap();
        // The worker grabs trials, then dies without reporting.
        let (grabbed, _) = worker.fetch_batch(3).unwrap();
        assert_eq!(grabbed.len(), 3);
        worker.leave().unwrap();
        assert!(worker.fetch().is_err(), "departed member must be refused");
        // The founder inherits the exact same trials.
        let (again, _) = founder.fetch_batch(5).unwrap();
        let grabbed_iters: Vec<usize> = grabbed.iter().map(|t| t.iteration).collect();
        let again_iters: Vec<usize> = again.iter().map(|t| t.iteration).collect();
        assert_eq!(&again_iters[..3], &grabbed_iters[..]);
        server.shutdown();
    }

    #[test]
    fn trial_deadline_requeues_stragglers() {
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 1,
            trial_deadline: Some(Duration::from_millis(30)),
            ..Default::default()
        });
        let founder = server.connect("straggle").unwrap();
        founder.add_param(Param::int("x", 0, 100, 1)).unwrap();
        founder
            .seal(
                SessionOptions {
                    max_evaluations: 4,
                    seed: 2,
                    ..Default::default()
                },
                StrategyKind::Random,
            )
            .unwrap();
        let worker = server.attach(founder.session_id()).unwrap();
        let (held, _) = worker.fetch_batch(1).unwrap();
        assert_eq!(held.len(), 1);
        std::thread::sleep(Duration::from_millis(60));
        // Past the deadline the founder's fetch claims the same trial.
        let f = founder.fetch().unwrap();
        assert_eq!(f.iteration, held[0].iteration);
        founder.report(1.0).unwrap();
        // The straggler's late report is a tolerated duplicate.
        worker
            .report_batch(vec![TrialReport {
                iteration: held[0].iteration,
                cost: 1.0,
                wall_time: 1.0,
            }])
            .unwrap();
        server.shutdown();
    }

    #[test]
    fn client_ttl_evicts_silent_members() {
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 1,
            client_ttl: Some(Duration::from_millis(30)),
            ..Default::default()
        });
        let founder = server.connect("ttl").unwrap();
        founder.add_param(Param::int("x", 0, 100, 1)).unwrap();
        founder
            .seal(
                SessionOptions {
                    max_evaluations: 4,
                    seed: 3,
                    ..Default::default()
                },
                StrategyKind::Random,
            )
            .unwrap();
        let worker = server.attach(founder.session_id()).unwrap();
        let (held, _) = worker.fetch_batch(1).unwrap();
        assert_eq!(held.len(), 1);
        // The founder heartbeats; the worker goes silent past its TTL.
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(20));
            founder.heartbeat().unwrap();
        }
        // The worker was evicted and its trial requeued to the founder.
        let f = founder.fetch().unwrap();
        assert_eq!(f.iteration, held[0].iteration);
        assert!(worker.fetch().is_err(), "evicted member must be refused");
        server.shutdown();
    }

    #[test]
    fn heartbeat_keeps_a_member_alive() {
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 1,
            client_ttl: Some(Duration::from_millis(40)),
            ..Default::default()
        });
        let founder = server.connect("hb").unwrap();
        founder.add_param(Param::int("x", 0, 100, 1)).unwrap();
        founder
            .seal(
                SessionOptions {
                    max_evaluations: 4,
                    seed: 5,
                    ..Default::default()
                },
                StrategyKind::Random,
            )
            .unwrap();
        let worker = server.attach(founder.session_id()).unwrap();
        let (held, _) = worker.fetch_batch(1).unwrap();
        assert_eq!(held.len(), 1);
        // Both sides stay chatty for several TTL windows.
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(15));
            worker.heartbeat().unwrap();
            founder.heartbeat().unwrap();
        }
        // The trial is still the worker's: the founder gets a fresh one.
        let f = founder.fetch().unwrap();
        assert_ne!(f.iteration, held[0].iteration);
        server.shutdown();
    }

    #[test]
    fn warm_store_serves_a_second_run_without_remeasurement() {
        let dir = std::env::temp_dir().join(format!("ah-server-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.store");
        let _ = std::fs::remove_file(&path);
        let cost_of = |cfg: &crate::space::Configuration| {
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            (x - 42.0).powi(2) + (y - 13.0).powi(2)
        };
        let connect = |store: &SharedStore| {
            let server = HarmonyServer::start_with_config(ServerConfig {
                shards: 2,
                store: Some(store.clone()),
                ..Default::default()
            });
            let client = server.connect("warm").unwrap();
            client.add_param(Param::int("x", 0, 80, 1)).unwrap();
            client.add_param(Param::int("y", 0, 80, 1)).unwrap();
            client
                .seal(
                    SessionOptions {
                        max_evaluations: 60,
                        seed: 11,
                        ..Default::default()
                    },
                    StrategyKind::NelderMead,
                )
                .unwrap();
            (server, client)
        };

        // Cold run: every trial is dispatched and measured by the client.
        let store = SharedStore::open(&path).unwrap();
        let (server, client) = connect(&store);
        let mut measured = 0usize;
        loop {
            let (trials, finished) = client.fetch_batch(4).unwrap();
            if finished {
                break;
            }
            let reports = trials
                .iter()
                .map(|t| {
                    measured += 1;
                    TrialReport {
                        iteration: t.iteration,
                        cost: cost_of(&t.config),
                        wall_time: 1.0,
                    }
                })
                .collect();
            client.report_batch(reports).unwrap();
        }
        let (cold, _) = client.history().unwrap();
        server.shutdown();
        store.flush().unwrap();
        assert_eq!(measured, 60, "cold run measures its whole budget");
        assert_eq!(store.stats().live_configs, 60);
        drop(store);

        // Warm run against the same store file: the server resolves every
        // proposal internally and the very first fetch reports `finished`.
        let store = SharedStore::open(&path).unwrap();
        let (server, client) = connect(&store);
        let first = client.fetch().unwrap();
        assert!(first.finished, "warm run must finish without dispatching");
        let (warm, finished) = client.history().unwrap();
        assert!(finished);
        server.shutdown();

        // Bit-identical trajectory, every warm row served from the store.
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.evaluations().iter().zip(warm.evaluations()) {
            assert_eq!(c.iteration, w.iteration);
            assert_eq!(c.config.cache_key(), w.config.cache_key());
            assert_eq!(c.cost.to_bits(), w.cost.to_bits());
        }
        assert!(warm.evaluations().iter().all(|e| e.cached));
        // The warm run re-recorded nothing: bit-identical costs dedup away.
        assert_eq!(store.stats().records, 60);
    }

    #[test]
    fn store_backed_batches_interleave_hits_and_fresh_trials() {
        // Pre-populate the store with only *some* of the configurations a
        // run will visit, via a half-budget cold run; the full-budget run
        // must then mix server-side hits with dispatched trials and still
        // match a storeless full run bit-for-bit.
        let dir = std::env::temp_dir().join(format!("ah-server-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("partial.store");
        let _ = std::fs::remove_file(&path);
        let cost_of = |cfg: &crate::space::Configuration| {
            let x = cfg.int("x").unwrap() as f64;
            (x - 33.0).powi(2)
        };
        let run = |store: Option<SharedStore>, evals: usize| {
            let server = HarmonyServer::start_with_config(ServerConfig {
                shards: 1,
                store,
                ..Default::default()
            });
            let client = server.connect("partial").unwrap();
            client.add_param(Param::int("x", 0, 200, 1)).unwrap();
            client
                .seal(
                    SessionOptions {
                        max_evaluations: evals,
                        seed: 7,
                        ..Default::default()
                    },
                    StrategyKind::NelderMead,
                )
                .unwrap();
            let mut measured = 0usize;
            loop {
                let (trials, finished) = client.fetch_batch(3).unwrap();
                if finished {
                    break;
                }
                let reports = trials
                    .iter()
                    .map(|t| {
                        measured += 1;
                        TrialReport {
                            iteration: t.iteration,
                            cost: cost_of(&t.config),
                            wall_time: 1.0,
                        }
                    })
                    .collect();
                client.report_batch(reports).unwrap();
            }
            let (h, _) = client.history().unwrap();
            server.shutdown();
            (measured, h)
        };
        let store = SharedStore::open(&path).unwrap();
        let (m_half, _) = run(Some(store.clone()), 25);
        assert_eq!(m_half, 25);
        store.flush().unwrap();

        let (m_none, reference) = run(None, 50);
        assert_eq!(m_none, 50);
        let (m_mixed, mixed) = run(Some(store), 50);
        assert!(
            m_mixed < 50 && m_mixed > 0,
            "expected a mix of hits and fresh trials, measured {m_mixed}"
        );
        assert_eq!(reference.len(), mixed.len());
        for (a, b) in reference.evaluations().iter().zip(mixed.evaluations()) {
            assert_eq!(a.config.cache_key(), b.config.cache_key());
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
        assert!(mixed.evaluations().iter().any(|e| e.cached));
    }

    #[test]
    fn attach_to_unknown_session_fails() {
        let server = HarmonyServer::start_with(2);
        let err = server.attach(999_999).unwrap_err();
        assert!(err.to_string().contains("unknown session"), "{err}");
        server.shutdown();
    }

    #[test]
    fn session_quota_refuses_then_frees_on_leave() {
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 2,
            tenant_max_sessions: Some(1),
            ..Default::default()
        });
        let first = server.connect_as("a", "team-a").unwrap();
        let err = server.connect_as("b", "team-a").unwrap_err();
        assert_eq!(
            err,
            HarmonyError::QuotaExceeded {
                tenant: "team-a".into()
            }
        );
        // Another tenant's budget is untouched by team-a being full.
        let other = server.connect_as("c", "team-b").unwrap();
        // Attaching a worker joins the existing session; it does not found
        // a new one, so it passes while the session quota is exhausted.
        first.add_param(Param::int("x", 0, 10, 1)).unwrap();
        first
            .seal(SessionOptions::default(), StrategyKind::Random)
            .unwrap();
        let worker = server.attach_as(first.session_id(), "team-a").unwrap();
        worker.leave().unwrap();
        // Only the *last* member leaving frees the session slot.
        first.leave().unwrap();
        server.connect_as("d", "team-a").unwrap();
        other.leave().unwrap();
        server.shutdown();
    }

    #[test]
    fn inflight_quota_clamps_batches_and_refuses_empty_handed_fetches() {
        let telemetry = Telemetry::enabled();
        let server = HarmonyServer::start_with_config(ServerConfig {
            shards: 1,
            tenant_max_inflight: Some(2),
            telemetry: telemetry.clone(),
            ..Default::default()
        });
        let c = server.connect_as("q", "team").unwrap();
        c.add_param(Param::int("x", 0, 1000, 1)).unwrap();
        c.seal(
            SessionOptions {
                max_evaluations: 50,
                seed: 1,
                ..Default::default()
            },
            StrategyKind::Random,
        )
        .unwrap();
        // A batch fetch is clamped to the tenant's in-flight budget.
        let (trials, finished) = c.fetch_batch(10).unwrap();
        assert!(!finished);
        assert_eq!(trials.len(), 2);
        // Re-fetching serves the same outstanding trials (refetch is exempt
        // from the quota — it issues nothing new).
        let (again, _) = c.fetch_batch(10).unwrap();
        let iters: Vec<usize> = trials.iter().map(|t| t.iteration).collect();
        let again_iters: Vec<usize> = again.iter().map(|t| t.iteration).collect();
        assert_eq!(iters, again_iters);
        // A second member with nothing to re-serve is refused, typed.
        let w = server.attach_as(c.session_id(), "team").unwrap();
        let quota_err = HarmonyError::QuotaExceeded {
            tenant: "team".into(),
        };
        assert_eq!(w.fetch_batch(10).unwrap_err(), quota_err);
        assert_eq!(w.fetch().unwrap_err(), quota_err);
        assert!(telemetry.counter(Counter::QuotaRefusals) >= 2);
        // Reporting frees the budget for the whole tenant.
        c.report_batch(
            trials
                .iter()
                .map(|t| TrialReport {
                    iteration: t.iteration,
                    cost: 1.0,
                    wall_time: 0.0,
                })
                .collect(),
        )
        .unwrap();
        let (now, _) = w.fetch_batch(10).unwrap();
        assert_eq!(now.len(), 2);
        server.shutdown();
    }

    #[test]
    fn sync_peer_replicates_and_warm_starts_from_peer_records() {
        let dir = std::env::temp_dir().join(format!("ah-server-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path_a = dir.join("a.store");
        let path_b = dir.join("b.store");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let cost_of = |cfg: &crate::space::Configuration| {
            let x = cfg.int("x").unwrap() as f64;
            (x - 21.0).powi(2)
        };
        let campaign = |server: &HarmonyServer| {
            let client = server.connect("fed").unwrap();
            client.add_param(Param::int("x", 0, 80, 1)).unwrap();
            client
                .seal(
                    SessionOptions {
                        max_evaluations: 30,
                        seed: 13,
                        ..Default::default()
                    },
                    StrategyKind::NelderMead,
                )
                .unwrap();
            let mut measured = 0usize;
            loop {
                let (trials, finished) = client.fetch_batch(4).unwrap();
                if finished {
                    break;
                }
                let reports = trials
                    .iter()
                    .map(|t| {
                        measured += 1;
                        TrialReport {
                            iteration: t.iteration,
                            cost: cost_of(&t.config),
                            wall_time: 1.0,
                        }
                    })
                    .collect();
                client.report_batch(reports).unwrap();
            }
            let (h, _) = client.history().unwrap();
            (measured, h)
        };

        // Server A measures a campaign and exposes its log over /store/log.
        let store_a = SharedStore::open(&path_a).unwrap();
        let server_a = HarmonyServer::start_with_config(ServerConfig {
            shards: 1,
            store: Some(store_a.clone()),
            ..Default::default()
        });
        let observe_a = server_a.observe("127.0.0.1:0").unwrap();
        let (measured_a, hist_a) = campaign(&server_a);
        assert_eq!(measured_a, 30);
        store_a.flush().unwrap();

        // Server B starts on an empty store with A as its anti-entropy peer.
        let store_b = SharedStore::open(&path_b).unwrap();
        let server_b = HarmonyServer::start_with_config(ServerConfig {
            shards: 1,
            store: Some(store_b.clone()),
            sync_peers: vec![observe_a.addr().to_string()],
            sync_interval: Duration::from_millis(25),
            ..Default::default()
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while store_b.record_count() < store_a.record_count() {
            assert!(Instant::now() < deadline, "replication did not converge");
            std::thread::sleep(Duration::from_millis(10));
        }
        // B never measured a trial of this app, yet it answers the whole
        // campaign from records it pulled off A.
        let (measured_b, hist_b) = campaign(&server_b);
        assert_eq!(measured_b, 0, "warm start on B must re-measure nothing");
        assert_eq!(hist_a.len(), hist_b.len());
        for (a, b) in hist_a.evaluations().iter().zip(hist_b.evaluations()) {
            assert_eq!(a.config.cache_key(), b.config.cache_key());
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
        assert!(hist_b.evaluations().iter().all(|e| e.cached));
        server_b.shutdown();
        observe_a.stop();
        server_a.shutdown();
    }

    #[test]
    fn attach_routes_to_the_founders_shard() {
        // Exercise id allocation across several shard counts: an attached
        // member must always land on the shard owning the session.
        for shards in [1usize, 2, 3, 5, 8] {
            let server = HarmonyServer::start_with(shards);
            let founder = server.connect("route").unwrap();
            founder.add_param(Param::int("x", 0, 10, 1)).unwrap();
            founder
                .seal(SessionOptions::default(), StrategyKind::Random)
                .unwrap();
            for _ in 0..3 {
                let w = server.attach(founder.session_id()).unwrap();
                assert_eq!(
                    w.id() % shards as u64,
                    founder.id() % shards as u64,
                    "shards={shards}"
                );
                let (trials, _) = w.fetch_batch(1).unwrap();
                assert_eq!(trials.len(), 1);
                w.leave().unwrap();
            }
            server.shutdown();
        }
    }
}

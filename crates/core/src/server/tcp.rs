//! TCP transport for the Harmony server.
//!
//! The real Active Harmony ran as a network daemon that applications on the
//! compute nodes connected to. This module puts the same serde
//! [`protocol`](super::protocol) on a socket: one JSON message per line,
//! one tuning client per connection. The in-process
//! [`HarmonyServer`](super::HarmonyServer) remains the adaptation
//! controller; connections are bridged onto its sharded message bus.
//!
//! A whole batch (`FetchBatch` request, `Configs` reply, `ReportBatch`
//! request) is one serde frame — one line, one write — so a PRO round of
//! candidates costs a single round-trip. Sockets run with `TCP_NODELAY`
//! and buffered writers: frames are small and latency-bound, so waiting
//! for Nagle coalescing only delays the tuning loop.

use super::protocol::{FetchedTrial, Reply, Request, StrategyKind, TrialReport};
use super::{HarmonyServer, ServerBus};
use crate::error::{HarmonyError, Result};
use crate::param::Param;
use crate::session::SessionOptions;
use crate::space::Configuration;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default cap on simultaneously served connections; beyond it new
/// connections are refused with an error reply instead of degrading every
/// established tuning loop.
pub const DEFAULT_MAX_CONNECTIONS: usize = 128;

/// Decrements the live-connection count when a connection ends, however it
/// ends (clean goodbye, I/O error, handler panic).
struct ConnectionSlot(Arc<AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A Harmony server listening on a TCP socket.
pub struct TcpHarmonyServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    inner: Option<HarmonyServer>,
}

impl TcpHarmonyServer {
    /// Bind and start serving with [`DEFAULT_MAX_CONNECTIONS`]. Use
    /// `"127.0.0.1:0"` to pick a free port.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Self::bind_with_limit(addr, DEFAULT_MAX_CONNECTIONS)
    }

    /// Bind with an explicit cap on simultaneous connections; connection
    /// number `max_connections + 1` gets an error reply and is dropped.
    pub fn bind_with_limit(addr: &str, max_connections: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = HarmonyServer::start();
        let bus = inner.bus();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let max_connections = max_connections.max(1);
        let accept_handle = std::thread::Builder::new()
            .name("harmony-tcp-accept".into())
            .spawn(move || {
                let active = Arc::new(AtomicUsize::new(0));
                let mut conn_seq: u64 = 0;
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if active.fetch_add(1, Ordering::SeqCst) >= max_connections {
                        active.fetch_sub(1, Ordering::SeqCst);
                        refuse_connection(stream, max_connections);
                        continue;
                    }
                    let slot = ConnectionSlot(Arc::clone(&active));
                    let bus = bus.clone();
                    conn_seq += 1;
                    let spawned = std::thread::Builder::new()
                        .name(format!("harmony-tcp-conn-{conn_seq}"))
                        .spawn(move || {
                            let _slot = slot;
                            serve_connection(stream, bus);
                        });
                    if let Err(e) = spawned {
                        // The slot was moved into the failed closure and
                        // dropped with it, releasing the count.
                        eprintln!("harmony-tcp: could not spawn connection thread: {e}");
                    }
                }
            })?;
        Ok(TcpHarmonyServer {
            addr: local,
            stop,
            accept_handle: Some(accept_handle),
            inner: Some(inner),
        })
    }

    /// The bound address (with the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and shut the adaptation controller down.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(inner) = self.inner.take() {
            inner.shutdown();
        }
    }
}

impl Drop for TcpHarmonyServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.do_shutdown();
        }
    }
}

/// Tell an over-limit connection why it is being dropped, then drop it.
fn refuse_connection(stream: TcpStream, limit: usize) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    eprintln!("harmony-tcp: refusing {peer}: at connection capacity ({limit})");
    let mut writer = BufWriter::new(stream);
    let _ = send_reply(
        &mut writer,
        &Reply::Error {
            message: format!("server at connection capacity ({limit})"),
        },
    );
}

/// Per-connection loop: read JSON lines, bridge onto the in-process bus,
/// write JSON replies. The connection *is* the client: its id is allocated
/// by the first `Register` and reused for every later request.
fn serve_connection(stream: TcpStream, bus: ServerBus) {
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(writer_stream);
    let reader = BufReader::new(stream);
    let mut client_id: u64 = 0;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<Request>(&line) {
            Ok(Request::Shutdown) => {
                // Connection-level goodbye; never forwarded (a remote client
                // must not be able to kill the shared server).
                let _ = send_reply(&mut writer, &Reply::Ok);
                break;
            }
            Ok(req) => {
                let (tx, rx) = crossbeam::channel::bounded(1);
                if bus
                    .send(super::protocol::Envelope {
                        client: client_id,
                        req,
                        reply: tx,
                    })
                    .is_err()
                {
                    break;
                }
                match rx.recv() {
                    Ok(reply) => reply,
                    Err(_) => break,
                }
            }
            Err(e) => Reply::Error {
                message: format!("malformed request: {e}"),
            },
        };
        if let Reply::Registered { client_id: id } = reply {
            client_id = id;
        }
        if send_reply(&mut writer, &reply).is_err() {
            break;
        }
    }
}

fn send_reply(writer: &mut BufWriter<TcpStream>, reply: &Reply) -> std::io::Result<()> {
    let mut blob = serde_json::to_string(reply).expect("replies serialize");
    blob.push('\n');
    writer.write_all(blob.as_bytes())?;
    writer.flush()
}

/// A Harmony client talking to a [`TcpHarmonyServer`] over a socket.
pub struct TcpHarmonyClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpHarmonyClient {
    /// Connect and register the application.
    pub fn connect(addr: SocketAddr, app: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(|_| HarmonyError::Disconnected)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(|_| HarmonyError::Disconnected)?;
        let mut client = TcpHarmonyClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(writer),
        };
        match client.call(Request::Register {
            app: app.to_string(),
        })? {
            Reply::Registered { .. } => Ok(client),
            Reply::Error { message } => Err(HarmonyError::Protocol(message)),
            _ => Err(HarmonyError::Protocol("unexpected reply".into())),
        }
    }

    fn call(&mut self, req: Request) -> Result<Reply> {
        let mut blob = serde_json::to_string(&req).expect("requests serialize");
        blob.push('\n');
        self.writer
            .write_all(blob.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|_| HarmonyError::Disconnected)?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|_| HarmonyError::Disconnected)?;
        if n == 0 {
            return Err(HarmonyError::Disconnected);
        }
        serde_json::from_str(&line).map_err(|e| HarmonyError::Protocol(format!("bad reply: {e}")))
    }

    fn call_ok(&mut self, req: Request) -> Result<()> {
        match self.call(req)? {
            Reply::Error { message } => Err(HarmonyError::Protocol(message)),
            _ => Ok(()),
        }
    }

    /// Declare a tunable parameter.
    pub fn add_param(&mut self, param: Param) -> Result<()> {
        self.call_ok(Request::AddParam { param })
    }

    /// Declare a monotone-chain dependency.
    pub fn add_monotone_chain<I, S>(&mut self, names: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.call_ok(Request::AddMonotoneChain {
            names: names.into_iter().map(Into::into).collect(),
        })
    }

    /// Finish declaration and start tuning.
    pub fn seal(&mut self, options: SessionOptions, strategy: StrategyKind) -> Result<()> {
        self.call_ok(Request::Seal { options, strategy })
    }

    /// Fetch the next configuration (same semantics as the in-process
    /// client: repeats until reported; `finished` carries the final best).
    pub fn fetch(&mut self) -> Result<(Configuration, bool)> {
        match self.call(Request::Fetch)? {
            Reply::Config {
                config, finished, ..
            } => Ok((config, finished)),
            Reply::Error { message } => Err(HarmonyError::Protocol(message)),
            _ => Err(HarmonyError::Protocol("unexpected reply to Fetch".into())),
        }
    }

    /// Report the measured cost of the last fetched configuration.
    pub fn report(&mut self, cost: f64) -> Result<()> {
        self.call_ok(Request::Report {
            cost,
            wall_time: cost,
        })
    }

    /// Fetch up to `max` configurations in one round-trip — one request
    /// frame out, one reply frame back. Returns `(trials, finished)`.
    pub fn fetch_batch(&mut self, max: usize) -> Result<(Vec<FetchedTrial>, bool)> {
        match self.call(Request::FetchBatch { max })? {
            Reply::Configs { trials, finished } => Ok((trials, finished)),
            Reply::Error { message } => Err(HarmonyError::Protocol(message)),
            _ => Err(HarmonyError::Protocol(
                "unexpected reply to FetchBatch".into(),
            )),
        }
    }

    /// Report measured costs for any subset of outstanding trials in one
    /// round-trip (one frame each way).
    pub fn report_batch(&mut self, reports: Vec<TrialReport>) -> Result<()> {
        self.call_ok(Request::ReportBatch { reports })
    }

    /// Best `(configuration, cost)` so far.
    pub fn best(&mut self) -> Result<Option<(Configuration, f64)>> {
        match self.call(Request::QueryBest)? {
            Reply::Best { best } => Ok(best),
            Reply::Error { message } => Err(HarmonyError::Protocol(message)),
            _ => Err(HarmonyError::Protocol("unexpected reply".into())),
        }
    }

    /// Say goodbye (closes this connection only).
    pub fn close(mut self) {
        let _ = self.call(Request::Shutdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_client_tunes_end_to_end() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpHarmonyClient::connect(server.local_addr(), "tcp-app").unwrap();
        client.add_param(Param::int("x", 0, 80, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 80,
                    seed: 5,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        loop {
            let (cfg, finished) = client.fetch().unwrap();
            if finished {
                break;
            }
            let x = cfg.int("x").unwrap() as f64;
            client.report((x - 33.0).powi(2)).unwrap();
        }
        let (best, cost) = client.best().unwrap().unwrap();
        assert!(cost <= 4.0, "best {best} cost {cost}");
        assert!((best.int("x").unwrap() - 33).abs() <= 2);
        client.close();
        server.shutdown();
    }

    #[test]
    fn two_tcp_clients_tune_concurrently() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let handles: Vec<_> = [(10i64, 1u64), (64, 2)]
            .into_iter()
            .map(|(target, seed)| {
                std::thread::spawn(move || {
                    let mut c = TcpHarmonyClient::connect(addr, "app").unwrap();
                    c.add_param(Param::int("x", 0, 100, 1)).unwrap();
                    c.seal(
                        SessionOptions {
                            max_evaluations: 60,
                            seed,
                            ..Default::default()
                        },
                        StrategyKind::NelderMead,
                    )
                    .unwrap();
                    loop {
                        let (cfg, finished) = c.fetch().unwrap();
                        if finished {
                            break;
                        }
                        let x = cfg.int("x").unwrap();
                        c.report(((x - target) as f64).abs()).unwrap();
                    }
                    let (cfg, _) = c.best().unwrap().unwrap();
                    cfg.int("x").unwrap()
                })
            })
            .collect();
        let results: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!((results[0] - 10).abs() <= 2, "{results:?}");
        assert!((results[1] - 64).abs() <= 2, "{results:?}");
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_error_replies() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"this is not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply: Reply = serde_json::from_str(&line).unwrap();
        assert!(matches!(reply, Reply::Error { .. }), "{line}");
        server.shutdown();
    }

    #[test]
    fn client_shutdown_does_not_kill_the_server() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let c1 = TcpHarmonyClient::connect(addr, "a").unwrap();
        c1.close();
        // A new client can still connect and work.
        let mut c2 = TcpHarmonyClient::connect(addr, "b").unwrap();
        c2.add_param(Param::int("x", 0, 4, 1)).unwrap();
        c2.seal(SessionOptions::default(), StrategyKind::Random)
            .unwrap();
        let (cfg, _) = c2.fetch().unwrap();
        assert!(cfg.int("x").is_some());
        server.shutdown();
    }

    #[test]
    fn over_limit_connections_are_refused_with_an_error() {
        let server = TcpHarmonyServer::bind_with_limit("127.0.0.1:0", 1).expect("bind");
        let addr = server.local_addr();
        // First connection occupies the single slot.
        let c1 = TcpHarmonyClient::connect(addr, "a").unwrap();
        // Second one must be told off, not silently dropped.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"Register\":{\"app\":\"b\"}}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply: Reply = serde_json::from_str(&line).unwrap();
        match reply {
            Reply::Error { message } => assert!(
                message.contains("connection capacity"),
                "unexpected refusal message: {message}"
            ),
            other => panic!("expected refusal error, got {other:?}"),
        }
        drop(reader);
        // Releasing the first slot lets new connections in again.
        c1.close();
        for _ in 0..50 {
            if TcpHarmonyClient::connect(addr, "c").is_ok() {
                server.shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        panic!("slot was not released after client close");
    }

    #[test]
    fn batched_fetch_report_works_over_tcp() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpHarmonyClient::connect(server.local_addr(), "batch-app").unwrap();
        client.add_param(Param::int("x", 0, 50, 1)).unwrap();
        client.add_param(Param::int("y", 0, 50, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 120,
                    seed: 9,
                    ..Default::default()
                },
                StrategyKind::Pro,
            )
            .unwrap();
        loop {
            let (trials, finished) = client.fetch_batch(32).unwrap();
            if finished {
                break;
            }
            assert!(!trials.is_empty());
            let reports = trials
                .iter()
                .map(|t| {
                    let x = t.config.int("x").unwrap() as f64;
                    let y = t.config.int("y").unwrap() as f64;
                    let cost = (x - 40.0).powi(2) + (y - 8.0).powi(2);
                    TrialReport {
                        iteration: t.iteration,
                        cost,
                        wall_time: cost,
                    }
                })
                .collect();
            client.report_batch(reports).unwrap();
        }
        let (best, cost) = client.best().unwrap().unwrap();
        assert!(cost <= 25.0, "best {best} cost {cost}");
        client.close();
        server.shutdown();
    }
}

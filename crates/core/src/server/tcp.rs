//! TCP transport for the Harmony server.
//!
//! The real Active Harmony ran as a network daemon that applications on the
//! compute nodes connected to. This module puts the same serde
//! [`protocol`](super::protocol) on a socket: one JSON message per line,
//! one tuning client per connection. The in-process
//! [`HarmonyServer`](super::HarmonyServer) remains the adaptation
//! controller; connections are bridged onto its sharded message bus.
//!
//! Two front-ends do the bridging, selected by [`TcpTransport`]: the
//! default nonblocking readiness [`event loop`](super::event_loop), which
//! multiplexes thousands of connections over a few loop threads, and the
//! legacy thread-per-connection mode kept as the semantic baseline the
//! event loop is property-tested against. Both produce bit-identical
//! tuning trajectories; they differ only in how many clients they scale
//! to.
//!
//! A whole batch (`FetchBatch` request, `Configs` reply, `ReportBatch`
//! request) is one serde frame — one line, one write — so a PRO round of
//! candidates costs a single round-trip. Sockets run with `TCP_NODELAY`
//! and buffered writers: frames are small and latency-bound, so waiting
//! for Nagle coalescing only delays the tuning loop.
//!
//! # Fault tolerance
//!
//! On the paper's machines clients lose connections mid-iteration, so
//! [`TcpHarmonyClient`] retries retryable failures with the bounded
//! exponential backoff of a [`RetryPolicy`]: connects retry on refusal or
//! capacity errors, and idempotent requests (fetches, batch reports,
//! queries) transparently reconnect and [`Request::Attach`] back to their
//! session under a fresh client id. Reports ride `ReportBatch` with the
//! trial's iteration token, which the server treats idempotently — a
//! retried report whose first copy did arrive is a tolerated duplicate.
//! When a connection dies, the server front-end synthesises a
//! [`Request::Leave`], requeueing the client's outstanding trials for the
//! surviving members.

use super::client::reply_error;
use super::event_loop::{EventLoopConfig, EventLoopPool};
use super::protocol::{FetchedTrial, Reply, Request, StrategyKind, TrialReport};
use super::{HarmonyServer, ServerBus};
use crate::error::{HarmonyError, Result};
use crate::history::History;
use crate::param::Param;
use crate::retry::RetryPolicy;
use crate::session::SessionOptions;
use crate::space::Configuration;
use crate::telemetry::{Counter, Latency, SpanKind, Telemetry};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default cap on simultaneously served connections; beyond it new
/// connections are refused with a retryable error reply instead of
/// degrading every established tuning loop. The readiness event loop
/// multiplexes connections instead of spawning threads, so the default
/// ceiling is sized by file descriptors and per-connection buffers, not by
/// thread stacks.
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;

/// Which front-end bridges sockets onto the in-process message bus.
#[derive(Debug, Clone)]
pub enum TcpTransport {
    /// Nonblocking readiness event loop (the default): a few loop threads
    /// multiplex every connection (see [`super::event_loop`]).
    EventLoop(EventLoopConfig),
    /// Legacy thread-per-connection serving. Kept as the semantic baseline
    /// the event loop is property-tested against; caps out around a few
    /// hundred clients.
    Threaded,
}

impl Default for TcpTransport {
    fn default() -> Self {
        TcpTransport::EventLoop(EventLoopConfig::default())
    }
}

/// Decrements the live-connection count when a connection ends, however it
/// ends (clean goodbye, I/O error, handler panic).
struct ConnectionSlot(Arc<AtomicUsize>);

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A Harmony server listening on a TCP socket.
pub struct TcpHarmonyServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    inner: Option<HarmonyServer>,
    pool: Option<EventLoopPool>,
    active: Arc<AtomicUsize>,
}

impl TcpHarmonyServer {
    /// Bind and start serving with [`DEFAULT_MAX_CONNECTIONS`] over the
    /// default [`TcpTransport`]. Use `"127.0.0.1:0"` to pick a free port.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        Self::bind_with_limit(addr, DEFAULT_MAX_CONNECTIONS)
    }

    /// Bind with an explicit cap on simultaneous connections; connection
    /// number `max_connections + 1` gets a retryable error reply and is
    /// dropped.
    pub fn bind_with_limit(addr: &str, max_connections: usize) -> std::io::Result<Self> {
        Self::bind_with(addr, max_connections, super::ServerConfig::default())
    }

    /// Bind with full control over the connection cap and the inner
    /// server's deadline/eviction policy.
    pub fn bind_with(
        addr: &str,
        max_connections: usize,
        config: super::ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_transport(addr, max_connections, config, TcpTransport::default())
    }

    /// Bind with the legacy thread-per-connection front-end.
    pub fn bind_threaded(
        addr: &str,
        max_connections: usize,
        config: super::ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_transport(addr, max_connections, config, TcpTransport::Threaded)
    }

    /// Bind with full control over cap, inner-server policy, and the
    /// socket front-end.
    pub fn bind_with_transport(
        addr: &str,
        max_connections: usize,
        config: super::ServerConfig,
        transport: TcpTransport,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let telemetry = config.telemetry.clone();
        let inner = HarmonyServer::start_with_config(config);
        let bus = inner.bus();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let max_connections = max_connections.max(1);
        let active = Arc::new(AtomicUsize::new(0));
        let (pool, accept_handle) = match transport {
            TcpTransport::EventLoop(cfg) => {
                let pool = EventLoopPool::start(
                    bus,
                    cfg,
                    max_connections,
                    telemetry,
                    Arc::clone(&active),
                )?;
                let dispatcher = pool.dispatcher();
                // The accept thread only hands sockets over; every read,
                // write, and refusal happens on the loop threads.
                let handle = std::thread::Builder::new()
                    .name("harmony-tcp-accept".into())
                    .spawn(move || {
                        for conn in listener.incoming() {
                            if stop_accept.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = conn else { continue };
                            dispatcher.dispatch(stream);
                        }
                    })?;
                (Some(pool), handle)
            }
            TcpTransport::Threaded => {
                let accept_active = Arc::clone(&active);
                let handle = std::thread::Builder::new()
                    .name("harmony-tcp-accept".into())
                    .spawn(move || {
                        let active = accept_active;
                        let mut conn_seq: u64 = 0;
                        for conn in listener.incoming() {
                            if stop_accept.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = conn else { continue };
                            // One spawn site for both outcomes: an
                            // over-cap connection's thread refuses it (the
                            // refusal must still read the first request,
                            // which may block) instead of a dedicated
                            // refusal thread.
                            let slot = if active.fetch_add(1, Ordering::SeqCst) >= max_connections {
                                active.fetch_sub(1, Ordering::SeqCst);
                                None
                            } else {
                                Some(ConnectionSlot(Arc::clone(&active)))
                            };
                            let bus = bus.clone();
                            let telemetry = telemetry.clone();
                            conn_seq += 1;
                            let spawned = std::thread::Builder::new()
                                .name(format!("harmony-tcp-conn-{conn_seq}"))
                                .spawn(move || match slot {
                                    Some(slot) => {
                                        let _slot = slot;
                                        telemetry.inc(Counter::ConnectionsAccepted);
                                        serve_connection(stream, bus, &telemetry);
                                    }
                                    None => refuse_connection(stream, max_connections, &telemetry),
                                });
                            if let Err(e) = spawned {
                                // The slot was moved into the failed closure
                                // and dropped with it, releasing the count.
                                eprintln!("harmony-tcp: could not spawn connection thread: {e}");
                            }
                        }
                    })?;
                (None, handle)
            }
        };
        Ok(TcpHarmonyServer {
            addr: local,
            stop,
            accept_handle: Some(accept_handle),
            inner: Some(inner),
            pool,
            active,
        })
    }

    /// The bound address (with the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// How many connections currently hold a slot of the connection
    /// ceiling.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Start the observability plane on `addr` (see
    /// [`HarmonyServer::observe`]).
    pub fn observe(&self, addr: &str) -> std::io::Result<super::ObserveHandle> {
        self.inner
            .as_ref()
            .expect("server not shut down")
            .observe(addr)
    }

    /// Stop accepting connections and shut the adaptation controller down.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
        if let Some(inner) = self.inner.take() {
            inner.shutdown();
        }
    }
}

impl Drop for TcpHarmonyServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.do_shutdown();
        }
    }
}

/// Tell an over-limit connection why it is being dropped, then drop it.
///
/// The refusal must *wait for the client's first request* before replying:
/// writing the error immediately and closing races the client's in-flight
/// write — the client's data then hits a closed socket, the kernel answers
/// with RST, and the buffered error frame is discarded, so the client sees
/// a bare EOF instead of the reason. Reading first means the client is
/// already blocked on its reply when the error frame goes out.
fn refuse_connection(stream: TcpStream, limit: usize, telemetry: &Telemetry) {
    telemetry.inc(Counter::ConnectionsRefused);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    eprintln!("harmony-tcp: refusing {peer}: at connection capacity ({limit})");
    // Bound the wait: a connection that never sends anything is dropped.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut first = String::new();
    let _ = BufReader::new(reader_stream).read_line(&mut first);
    let mut writer = BufWriter::new(stream);
    let _ = send_reply(
        &mut writer,
        &Reply::busy(format!("server at connection capacity ({limit})")),
    );
}

/// Per-connection loop: read JSON lines, bridge onto the in-process bus,
/// write JSON replies. The connection *is* the client: its id is allocated
/// by the first `Register`/`Attach` and reused for every later request.
/// However the connection ends — clean goodbye, EOF, I/O error — a `Leave`
/// is synthesised for its client so outstanding trials are requeued.
fn serve_connection(stream: TcpStream, bus: ServerBus, telemetry: &Telemetry) {
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(writer_stream);
    let reader = BufReader::new(stream);
    let mut client_id: u64 = 0;
    let mut departed = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<Request>(&line) {
            Ok(Request::Shutdown) => {
                // Connection-level goodbye; never forwarded (a remote client
                // must not be able to kill the shared server).
                let _ = send_reply(&mut writer, &Reply::Ok);
                break;
            }
            Ok(req) => {
                let is_leave = matches!(req, Request::Leave);
                let (tx, rx) = crossbeam::channel::bounded(1);
                if bus
                    .send(super::protocol::Envelope::new(client_id, req, tx))
                    .is_err()
                {
                    break;
                }
                match rx.recv() {
                    Ok(reply) => {
                        if is_leave && matches!(reply, Reply::Ok) {
                            departed = true;
                        }
                        reply
                    }
                    Err(_) => break,
                }
            }
            Err(e) => Reply::err(format!("malformed request: {e}")),
        };
        if let Reply::Registered { client_id: id, .. } = reply {
            client_id = id;
            departed = false;
        }
        if send_reply(&mut writer, &reply).is_err() {
            break;
        }
    }
    telemetry.inc(Counter::ConnectionsClosedByPeer);
    if client_id != 0 && !departed {
        // The connection died with the client still a member: requeue its
        // outstanding trials for the survivors.
        let (tx, rx) = crossbeam::channel::bounded(1);
        if bus
            .send(super::protocol::Envelope::new(
                client_id,
                Request::Leave,
                tx,
            ))
            .is_ok()
        {
            let _ = rx.recv();
        }
    }
}

fn send_reply(writer: &mut BufWriter<TcpStream>, reply: &Reply) -> std::io::Result<()> {
    let mut blob = serde_json::to_string(reply).expect("replies serialize");
    blob.push('\n');
    writer.write_all(blob.as_bytes())?;
    writer.flush()
}

/// Transport knobs of a [`TcpHarmonyClient`].
#[derive(Debug, Clone, Default)]
pub struct TcpClientOptions {
    /// Backoff schedule for connects and idempotent requests.
    pub retry: RetryPolicy,
    /// Per-operation socket deadline (connect, read, write). `None` blocks
    /// indefinitely; with a deadline, an elapsed read surfaces as
    /// [`HarmonyError::Timeout`] and is retried like a disconnect.
    pub io_timeout: Option<Duration>,
    /// Telemetry handle recording batch round-trip latencies and retry
    /// backoffs on the client side (disabled by default).
    pub telemetry: Telemetry,
    /// Tenant label sent with `Register`/`Attach`; empty (default) means
    /// the server's `"default"` tenant. Quota refusals for this tenant come
    /// back as the retryable [`HarmonyError::QuotaExceeded`].
    pub tenant: String,
}

fn io_error(e: std::io::Error, what: &str) -> HarmonyError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            HarmonyError::Timeout(format!("{what} deadline elapsed"))
        }
        _ => HarmonyError::Disconnected,
    }
}

/// One live socket to the server.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr, io_timeout: Option<Duration>) -> Result<Conn> {
        let stream = match io_timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t).map_err(|e| io_error(e, "connect")),
            None => TcpStream::connect(addr).map_err(|_| HarmonyError::Disconnected),
        }?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(io_timeout);
        let _ = stream.set_write_timeout(io_timeout);
        let writer = stream.try_clone().map_err(|_| HarmonyError::Disconnected)?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer: BufWriter::new(writer),
        })
    }

    fn call(&mut self, req: &Request) -> Result<Reply> {
        let mut blob = serde_json::to_string(req).expect("requests serialize");
        blob.push('\n');
        self.writer
            .write_all(blob.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| io_error(e, "request write"))?;
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| io_error(e, "reply read"))?;
        if n == 0 {
            return Err(HarmonyError::Disconnected);
        }
        serde_json::from_str(&line).map_err(|e| HarmonyError::Protocol(format!("bad reply: {e}")))
    }
}

/// A Harmony client talking to a [`TcpHarmonyServer`] over a socket, with
/// bounded retry/backoff and crash-rejoin via [`Request::Attach`].
pub struct TcpHarmonyClient {
    addr: SocketAddr,
    opts: TcpClientOptions,
    conn: Option<Conn>,
    client_id: u64,
    session: u64,
    /// Iteration token of the last unanswered plain fetch; reports ride
    /// `ReportBatch` with this token so a retried report is idempotent.
    last_fetch: Option<usize>,
}

impl std::fmt::Debug for TcpHarmonyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpHarmonyClient")
            .field("addr", &self.addr)
            .field("client_id", &self.client_id)
            .field("session", &self.session)
            .field("connected", &self.conn.is_some())
            .finish_non_exhaustive()
    }
}

/// Record one retry backoff in `telemetry`, then sleep it out. Shared by
/// the connect, attach, and idempotent-call retry loops so every backoff a
/// client takes shows up in the `retry_backoff_sleep` histogram.
fn observed_backoff(telemetry: &Telemetry, policy: &RetryPolicy, attempt: u32) {
    let sleep = policy.delay(attempt);
    telemetry.inc(Counter::RetryBackoffs);
    telemetry.observe(Latency::RetryBackoffSleep, sleep);
    std::thread::sleep(sleep);
}

impl TcpHarmonyClient {
    /// Connect and register the application (founds a new session), with
    /// default [`TcpClientOptions`].
    pub fn connect(addr: SocketAddr, app: &str) -> Result<Self> {
        Self::connect_with(addr, app, TcpClientOptions::default())
    }

    /// Connect and register with explicit retry/timeout options.
    pub fn connect_with(addr: SocketAddr, app: &str, opts: TcpClientOptions) -> Result<Self> {
        let mut client = TcpHarmonyClient {
            addr,
            opts,
            conn: None,
            client_id: 0,
            session: 0,
            last_fetch: None,
        };
        let policy = client.opts.retry.clone();
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match client.register_once(app) {
                Ok(()) => return Ok(client),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    observed_backoff(&client.opts.telemetry, &policy, attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Connect and join an existing session (worker pools, or rejoining
    /// after this process crashed and lost its previous connection).
    pub fn attach(addr: SocketAddr, session: u64) -> Result<Self> {
        Self::attach_with(addr, session, TcpClientOptions::default())
    }

    /// [`attach`](Self::attach) with explicit retry/timeout options.
    pub fn attach_with(addr: SocketAddr, session: u64, opts: TcpClientOptions) -> Result<Self> {
        let mut client = TcpHarmonyClient {
            addr,
            opts,
            conn: None,
            client_id: 0,
            session,
            last_fetch: None,
        };
        let policy = client.opts.retry.clone();
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match client.reconnect_once() {
                Ok(()) => return Ok(client),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    observed_backoff(&client.opts.telemetry, &policy, attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn register_once(&mut self, app: &str) -> Result<()> {
        let mut conn = Conn::open(self.addr, self.opts.io_timeout)?;
        match conn.call(&Request::Register {
            app: app.to_string(),
            tenant: self.opts.tenant.clone(),
        })? {
            Reply::Registered { client_id, session } => {
                self.client_id = client_id;
                self.session = session;
                self.conn = Some(conn);
                Ok(())
            }
            Reply::QuotaExceeded { tenant } => Err(HarmonyError::QuotaExceeded { tenant }),
            Reply::Error { message, retryable } => Err(reply_error(message, retryable)),
            _ => Err(HarmonyError::Protocol("unexpected reply".into())),
        }
    }

    /// Open a fresh socket and rejoin the remembered session under a new
    /// client id.
    fn reconnect_once(&mut self) -> Result<()> {
        if self.session == 0 {
            return Err(HarmonyError::Protocol(
                "cannot reconnect before registering".into(),
            ));
        }
        let mut conn = Conn::open(self.addr, self.opts.io_timeout)?;
        match conn.call(&Request::Attach {
            session: self.session,
            tenant: self.opts.tenant.clone(),
        })? {
            Reply::Registered { client_id, .. } => {
                self.client_id = client_id;
                self.conn = Some(conn);
                Ok(())
            }
            Reply::QuotaExceeded { tenant } => Err(HarmonyError::QuotaExceeded { tenant }),
            Reply::Error { message, retryable } => Err(reply_error(message, retryable)),
            _ => Err(HarmonyError::Protocol("unexpected reply".into())),
        }
    }

    /// One attempt: (re)open the connection if needed, send, read. A
    /// transport failure poisons the connection so the next attempt
    /// reconnects; a protocol-level error leaves it open.
    fn try_call(&mut self, req: &Request) -> Result<Reply> {
        if self.conn.is_none() {
            self.reconnect_once()?;
        }
        let conn = self.conn.as_mut().expect("connection opened above");
        match conn.call(req) {
            Ok(Reply::QuotaExceeded { tenant }) => Err(HarmonyError::QuotaExceeded { tenant }),
            Ok(Reply::Error { message, retryable }) => Err(reply_error(message, retryable)),
            Ok(reply) => Ok(reply),
            Err(e) => {
                if e.is_retryable() {
                    self.conn = None;
                }
                Err(e)
            }
        }
    }

    /// Retry loop for idempotent requests: fetches and queries have no
    /// side effect to duplicate, and batch reports are deduplicated by
    /// iteration token on the server.
    fn call_retrying(&mut self, req: Request) -> Result<Reply> {
        let policy = self.opts.retry.clone();
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match self.try_call(&req) {
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    observed_backoff(&self.opts.telemetry, &policy, attempt);
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Single attempt for declaration-phase requests, which are not
    /// idempotent (a retried `AddParam` whose first copy arrived would
    /// declare a duplicate parameter).
    fn call_once(&mut self, req: Request) -> Result<Reply> {
        self.try_call(&req)
    }

    /// This client's id on the server (changes after a reconnect).
    pub fn id(&self) -> u64 {
        self.client_id
    }

    /// The session this client tunes; keep it to
    /// [`attach`](Self::attach) after a process restart.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Declare a tunable parameter.
    pub fn add_param(&mut self, param: Param) -> Result<()> {
        self.call_once(Request::AddParam { param }).map(|_| ())
    }

    /// Declare a monotone-chain dependency.
    pub fn add_monotone_chain<I, S>(&mut self, names: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.call_once(Request::AddMonotoneChain {
            names: names.into_iter().map(Into::into).collect(),
        })
        .map(|_| ())
    }

    /// Finish declaration and start tuning.
    pub fn seal(&mut self, options: SessionOptions, strategy: StrategyKind) -> Result<()> {
        self.call_once(Request::Seal { options, strategy })
            .map(|_| ())
    }

    /// Fetch the next configuration (same semantics as the in-process
    /// client: repeats until reported; `finished` carries the final best).
    pub fn fetch(&mut self) -> Result<(Configuration, bool)> {
        match self.call_retrying(Request::Fetch)? {
            Reply::Config {
                config,
                iteration,
                finished,
            } => {
                self.last_fetch = if finished { None } else { Some(iteration) };
                Ok((config, finished))
            }
            _ => Err(HarmonyError::Protocol("unexpected reply to Fetch".into())),
        }
    }

    /// Report the measured cost of the last fetched configuration. Sent as
    /// a one-entry `ReportBatch` carrying the fetched iteration token, so a
    /// retry after a lost reply cannot double-count the measurement.
    pub fn report(&mut self, cost: f64) -> Result<()> {
        let Some(iteration) = self.last_fetch.take() else {
            return Err(HarmonyError::Protocol(
                "report without an outstanding fetch".into(),
            ));
        };
        let out = self.report_batch(vec![TrialReport {
            iteration,
            cost,
            wall_time: cost,
        }]);
        if out.is_err() {
            // Keep the token: the caller may retry the report.
            self.last_fetch = Some(iteration);
        }
        out
    }

    /// Fetch up to `max` configurations in one round-trip — one request
    /// frame out, one reply frame back. Returns `(trials, finished)`.
    pub fn fetch_batch(&mut self, max: usize) -> Result<(Vec<FetchedTrial>, bool)> {
        let started = Instant::now();
        let span = self
            .opts
            .telemetry
            .span_begin(SpanKind::Fetch, 0, "client", self.client_id);
        let reply = self.call_retrying(Request::FetchBatch { max });
        match &reply {
            Ok(_) => self.opts.telemetry.span_end(span),
            Err(_) => self.opts.telemetry.span_fault(span, "rpc_failed"),
        }
        let reply = reply?;
        self.opts
            .telemetry
            .observe(Latency::FetchBatchRtt, started.elapsed());
        match reply {
            Reply::Configs { trials, finished } => Ok((trials, finished)),
            _ => Err(HarmonyError::Protocol(
                "unexpected reply to FetchBatch".into(),
            )),
        }
    }

    /// Report measured costs for any subset of outstanding trials in one
    /// round-trip (one frame each way). Safe to retry: duplicates are
    /// dropped by iteration token on the server.
    pub fn report_batch(&mut self, reports: Vec<TrialReport>) -> Result<()> {
        let started = Instant::now();
        let span = self
            .opts
            .telemetry
            .span_begin(SpanKind::Report, 0, "client", self.client_id);
        let reply = self.call_retrying(Request::ReportBatch { reports });
        match &reply {
            Ok(_) => self.opts.telemetry.span_end(span),
            Err(_) => self.opts.telemetry.span_fault(span, "rpc_failed"),
        }
        self.opts
            .telemetry
            .observe(Latency::ReportBatchRtt, started.elapsed());
        reply.map(|_| ())
    }

    /// Best `(configuration, cost)` so far.
    pub fn best(&mut self) -> Result<Option<(Configuration, f64)>> {
        match self.call_retrying(Request::QueryBest)? {
            Reply::Best { best } => Ok(best),
            _ => Err(HarmonyError::Protocol("unexpected reply".into())),
        }
    }

    /// The full evaluation history of the session, and whether it finished.
    pub fn history(&mut self) -> Result<(History, bool)> {
        match self.call_retrying(Request::QueryHistory)? {
            Reply::History { history, finished } => Ok((history, finished)),
            _ => Err(HarmonyError::Protocol(
                "unexpected reply to QueryHistory".into(),
            )),
        }
    }

    /// Refresh liveness during a long measurement (see
    /// [`ServerConfig::client_ttl`](super::ServerConfig::client_ttl)).
    pub fn heartbeat(&mut self) -> Result<()> {
        self.call_retrying(Request::Heartbeat).map(|_| ())
    }

    /// Depart from the session, requeueing outstanding trials for the
    /// remaining members.
    pub fn leave(&mut self) -> Result<()> {
        self.call_once(Request::Leave).map(|_| ())
    }

    /// Say goodbye (closes this connection only; the server front-end
    /// synthesises the `Leave`).
    pub fn close(mut self) {
        if let Some(conn) = self.conn.as_mut() {
            let _ = conn.call(&Request::Shutdown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_client_tunes_end_to_end() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpHarmonyClient::connect(server.local_addr(), "tcp-app").unwrap();
        client.add_param(Param::int("x", 0, 80, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 80,
                    seed: 5,
                    ..Default::default()
                },
                StrategyKind::NelderMead,
            )
            .unwrap();
        loop {
            let (cfg, finished) = client.fetch().unwrap();
            if finished {
                break;
            }
            let x = cfg.int("x").unwrap() as f64;
            client.report((x - 33.0).powi(2)).unwrap();
        }
        let (best, cost) = client.best().unwrap().unwrap();
        assert!(cost <= 4.0, "best {best} cost {cost}");
        assert!((best.int("x").unwrap() - 33).abs() <= 2);
        client.close();
        server.shutdown();
    }

    #[test]
    fn quota_refusal_over_tcp_is_typed_and_retryable() {
        let server = TcpHarmonyServer::bind_with(
            "127.0.0.1:0",
            DEFAULT_MAX_CONNECTIONS,
            crate::server::ServerConfig {
                tenant_max_sessions: Some(1),
                ..Default::default()
            },
        )
        .expect("bind");
        let opts = || TcpClientOptions {
            tenant: "team".into(),
            retry: RetryPolicy::none(),
            ..Default::default()
        };
        let mut first = TcpHarmonyClient::connect_with(server.local_addr(), "a", opts()).unwrap();
        // The refusal travels the wire as its own frame, not a generic
        // busy error, and classifies retryable for the backoff loop.
        let err = TcpHarmonyClient::connect_with(server.local_addr(), "b", opts()).unwrap_err();
        assert_eq!(
            err,
            HarmonyError::QuotaExceeded {
                tenant: "team".into()
            }
        );
        assert!(err.is_retryable(), "quota refusal must classify retryable");
        // Once the founding member departs, the slot frees immediately.
        first.leave().unwrap();
        let second = TcpHarmonyClient::connect_with(server.local_addr(), "c", opts());
        assert!(second.is_ok(), "{:?}", second.err());
        server.shutdown();
    }

    #[test]
    fn two_tcp_clients_tune_concurrently() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let handles: Vec<_> = [(10i64, 1u64), (64, 2)]
            .into_iter()
            .map(|(target, seed)| {
                std::thread::spawn(move || {
                    let mut c = TcpHarmonyClient::connect(addr, "app").unwrap();
                    c.add_param(Param::int("x", 0, 100, 1)).unwrap();
                    c.seal(
                        SessionOptions {
                            max_evaluations: 60,
                            seed,
                            ..Default::default()
                        },
                        StrategyKind::NelderMead,
                    )
                    .unwrap();
                    loop {
                        let (cfg, finished) = c.fetch().unwrap();
                        if finished {
                            break;
                        }
                        let x = cfg.int("x").unwrap();
                        c.report(((x - target) as f64).abs()).unwrap();
                    }
                    let (cfg, _) = c.best().unwrap().unwrap();
                    cfg.int("x").unwrap()
                })
            })
            .collect();
        let results: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!((results[0] - 10).abs() <= 2, "{results:?}");
        assert!((results[1] - 64).abs() <= 2, "{results:?}");
        server.shutdown();
    }

    #[test]
    fn threaded_transport_still_tunes_end_to_end() {
        let server = TcpHarmonyServer::bind_threaded(
            "127.0.0.1:0",
            DEFAULT_MAX_CONNECTIONS,
            crate::server::ServerConfig::default(),
        )
        .expect("bind");
        let mut client = TcpHarmonyClient::connect(server.local_addr(), "legacy").unwrap();
        client.add_param(Param::int("x", 0, 40, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 40,
                    seed: 3,
                    ..Default::default()
                },
                StrategyKind::Random,
            )
            .unwrap();
        loop {
            let (cfg, finished) = client.fetch().unwrap();
            if finished {
                break;
            }
            let x = cfg.int("x").unwrap() as f64;
            client.report((x - 7.0).abs()).unwrap();
        }
        assert!(client.best().unwrap().is_some());
        client.close();
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_error_replies() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"this is not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply: Reply = serde_json::from_str(&line).unwrap();
        assert!(matches!(reply, Reply::Error { .. }), "{line}");
        server.shutdown();
    }

    #[test]
    fn non_finite_cost_over_the_wire_is_sanitized_not_best() {
        // Regression: the vendored serde_json refuses to *serialize* NaN or
        // infinity, but raw JSON like `1e999` happily *parses* to `+inf`,
        // so a buggy or hostile client can deliver a non-finite cost over
        // TCP. The server must clamp it at the protocol boundary: it may
        // never become the session's best or scramble the cost ordering.
        let telemetry = Telemetry::enabled();
        let server = TcpHarmonyServer::bind_with(
            "127.0.0.1:0",
            64,
            crate::server::ServerConfig {
                telemetry: telemetry.clone(),
                ..Default::default()
            },
        )
        .expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut call = |frame: String| -> Reply {
            stream.write_all(frame.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            serde_json::from_str(&line).unwrap()
        };
        let frame = |req: &Request| serde_json::to_string(req).unwrap();

        let reply = call(frame(&Request::Register {
            app: "nan".into(),
            tenant: String::new(),
        }));
        assert!(matches!(reply, Reply::Registered { .. }), "{reply:?}");
        call(frame(&Request::AddParam {
            param: Param::int("x", 0, 10, 1),
        }));
        call(frame(&Request::Seal {
            options: SessionOptions {
                max_evaluations: 4,
                seed: 5,
                ..Default::default()
            },
            strategy: StrategyKind::Random,
        }));
        let Reply::Configs { trials, .. } = call(frame(&Request::FetchBatch { max: 4 })) else {
            panic!("expected Configs");
        };
        assert_eq!(trials.len(), 4);
        // First trial reports `1e999` (parses to +inf — a stand-in for any
        // non-finite measurement); the rest report finite costs.
        let poisoned = trials[0].iteration;
        call(format!(
            "{{\"ReportBatch\":{{\"reports\":[{{\"iteration\":{poisoned},\
             \"cost\":1e999,\"wall_time\":0.0}}]}}}}"
        ));
        let reports: Vec<String> = trials[1..]
            .iter()
            .map(|t| {
                format!(
                    "{{\"iteration\":{},\"cost\":{}.0,\"wall_time\":0.0}}",
                    t.iteration,
                    t.iteration + 2
                )
            })
            .collect();
        call(format!(
            "{{\"ReportBatch\":{{\"reports\":[{}]}}}}",
            reports.join(",")
        ));
        let Reply::Best { best } = call(frame(&Request::QueryBest)) else {
            panic!("expected Best");
        };
        let (_, cost) = best.expect("four evaluations happened");
        assert!(
            cost.is_finite(),
            "non-finite report leaked into best: {cost}"
        );
        assert_eq!(
            telemetry.counter(Counter::NonFiniteCostsSanitized),
            1,
            "the clamp must be counted exactly once"
        );
        server.shutdown();
    }

    #[test]
    fn client_shutdown_does_not_kill_the_server() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let c1 = TcpHarmonyClient::connect(addr, "a").unwrap();
        c1.close();
        // A new client can still connect and work.
        let mut c2 = TcpHarmonyClient::connect(addr, "b").unwrap();
        c2.add_param(Param::int("x", 0, 4, 1)).unwrap();
        c2.seal(SessionOptions::default(), StrategyKind::Random)
            .unwrap();
        let (cfg, _) = c2.fetch().unwrap();
        assert!(cfg.int("x").is_some());
        server.shutdown();
    }

    #[test]
    fn over_limit_connections_are_refused_with_an_error() {
        let server = TcpHarmonyServer::bind_with_limit("127.0.0.1:0", 1).expect("bind");
        let addr = server.local_addr();
        // First connection occupies the single slot.
        let c1 = TcpHarmonyClient::connect(addr, "a").unwrap();
        // Second one must be told off, not silently dropped.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"Register\":{\"app\":\"b\"}}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let reply: Reply = serde_json::from_str(&line).unwrap();
        match reply {
            Reply::Error { message, retryable } => {
                assert!(
                    message.contains("connection capacity"),
                    "unexpected refusal message: {message}"
                );
                assert!(retryable, "capacity refusal must be marked retryable");
            }
            other => panic!("expected refusal error, got {other:?}"),
        }
        drop(reader);
        // Releasing the first slot lets new connections in again.
        c1.close();
        for _ in 0..50 {
            if TcpHarmonyClient::connect(addr, "c").is_ok() {
                server.shutdown();
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        panic!("slot was not released after client close");
    }

    #[test]
    fn refused_connect_surfaces_server_busy_not_eof() {
        // The regression this guards: the refusal used to be written before
        // the client's request was read, so the client's in-flight write
        // triggered an RST that discarded the error frame and the client
        // saw a bare EOF (`Disconnected`). It must see the typed, retryable
        // capacity error instead.
        let server = TcpHarmonyServer::bind_with_limit("127.0.0.1:0", 1).expect("bind");
        let addr = server.local_addr();
        let _c1 = TcpHarmonyClient::connect(addr, "a").unwrap();
        let err = TcpHarmonyClient::connect_with(
            addr,
            "b",
            TcpClientOptions {
                retry: RetryPolicy::none(),
                ..Default::default()
            },
        )
        .unwrap_err();
        match err {
            HarmonyError::ServerBusy(msg) => {
                assert!(msg.contains("connection capacity"), "{msg}")
            }
            other => panic!("expected ServerBusy, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn dropped_connection_rejoins_via_attach_and_inherits_trials() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let mut c1 = TcpHarmonyClient::connect(addr, "crashy").unwrap();
        c1.add_param(Param::int("x", 0, 100, 1)).unwrap();
        c1.seal(
            SessionOptions {
                max_evaluations: 6,
                seed: 8,
                ..Default::default()
            },
            StrategyKind::Random,
        )
        .unwrap();
        let session = c1.session_id();
        let (held, _) = c1.fetch_batch(3).unwrap();
        assert_eq!(held.len(), 3);
        // Simulate a crash: the socket dies without a goodbye. The server
        // front-end synthesises a Leave, requeueing the 3 held trials.
        drop(c1);
        let mut c2 = TcpHarmonyClient::attach(addr, session).unwrap();
        // The Leave is processed asynchronously after the EOF; poll until
        // the requeued trials are served to the new incarnation.
        let mut inherited = Vec::new();
        for _ in 0..100 {
            let (trials, _) = c2.fetch_batch(3).unwrap();
            inherited = trials;
            if inherited.len() == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let held_iters: Vec<usize> = held.iter().map(|t| t.iteration).collect();
        let got_iters: Vec<usize> = inherited.iter().map(|t| t.iteration).collect();
        assert_eq!(got_iters, held_iters);
        // And the session completes normally from here.
        loop {
            let (trials, finished) = c2.fetch_batch(8).unwrap();
            if finished {
                break;
            }
            let reports = trials
                .iter()
                .map(|t| TrialReport {
                    iteration: t.iteration,
                    cost: t.config.int("x").unwrap() as f64,
                    wall_time: 0.0,
                })
                .collect();
            c2.report_batch(reports).unwrap();
        }
        let (h, finished) = c2.history().unwrap();
        assert!(finished);
        assert_eq!(h.evaluations().iter().filter(|e| !e.cached).count(), 6);
        c2.close();
        server.shutdown();
    }

    #[test]
    fn batched_fetch_report_works_over_tcp() {
        let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpHarmonyClient::connect(server.local_addr(), "batch-app").unwrap();
        client.add_param(Param::int("x", 0, 50, 1)).unwrap();
        client.add_param(Param::int("y", 0, 50, 1)).unwrap();
        client
            .seal(
                SessionOptions {
                    max_evaluations: 120,
                    seed: 9,
                    ..Default::default()
                },
                StrategyKind::Pro,
            )
            .unwrap();
        loop {
            let (trials, finished) = client.fetch_batch(32).unwrap();
            if finished {
                break;
            }
            assert!(!trials.is_empty());
            let reports = trials
                .iter()
                .map(|t| {
                    let x = t.config.int("x").unwrap() as f64;
                    let y = t.config.int("y").unwrap() as f64;
                    let cost = (x - 40.0).powi(2) + (y - 8.0).powi(2);
                    TrialReport {
                        iteration: t.iteration,
                        cost,
                        wall_time: cost,
                    }
                })
                .collect();
            client.report_batch(reports).unwrap();
        }
        let (best, cost) = client.best().unwrap().unwrap();
        assert!(cost <= 25.0, "best {best} cost {cost}");
        client.close();
        server.shutdown();
    }
}

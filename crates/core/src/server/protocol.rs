//! Wire protocol between Harmony clients and the server.
//!
//! Every message is serde-serializable, so the protocol can cross a process
//! boundary; the in-process transport used here carries `(client id, request,
//! reply channel)` envelopes over a crossbeam channel.

use crate::param::Param;
use crate::session::SessionOptions;
use crate::space::Configuration;
use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};

/// Which tuning algorithm the server should run for a client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Discrete Nelder–Mead simplex (the default adaptation controller).
    NelderMead,
    /// Uniform random sampling baseline.
    Random,
    /// Systematic sampling with a sample budget.
    Grid {
        /// Approximate number of evenly spaced samples.
        target: usize,
    },
    /// Parallel Rank Ordering (batch simplex; candidates of one round are
    /// independent and may be measured concurrently).
    Pro,
}

impl StrategyKind {
    /// Instantiate the strategy this kind names. Shared by the server's
    /// `Seal` handler and by write-ahead-log replay, so both construct the
    /// exact same strategy state for a given kind.
    pub fn build(&self) -> Box<dyn crate::strategy::SearchStrategy> {
        use crate::strategy::{GridSearch, NelderMead, ParallelRankOrder, RandomSearch};
        match self {
            StrategyKind::NelderMead => Box::new(NelderMead::default()),
            StrategyKind::Random => Box::new(RandomSearch::new()),
            StrategyKind::Grid { target } => Box::new(GridSearch::new(*target)),
            StrategyKind::Pro => Box::new(ParallelRankOrder::default()),
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Introduce a new client application.
    Register {
        /// Application label (for logs and prior-run keys).
        app: String,
    },
    /// Join an existing tuning session as an additional worker (or rejoin
    /// it after a crash). The session id is the one returned by
    /// [`Reply::Registered`]; the joining connection gets its own client id
    /// and may fetch/report trials of the shared session.
    Attach {
        /// Session to join.
        session: u64,
    },
    /// Liveness signal: refreshes this client's `last_seen` so deadline
    /// eviction does not requeue its outstanding trials while a long
    /// measurement is still running.
    Heartbeat,
    /// Depart from the session. Outstanding trials held by this client are
    /// requeued for other workers. Sent explicitly by well-behaved clients
    /// and synthesised by the TCP front-end when a connection drops.
    Leave,
    /// Declare one tunable parameter (pre-seal only).
    AddParam {
        /// The parameter declaration.
        param: Param,
    },
    /// Declare a monotone-chain dependency between parameters (pre-seal).
    AddMonotoneChain {
        /// Parameter names in chain order.
        names: Vec<String>,
    },
    /// Finish declaration and start tuning.
    Seal {
        /// Session stopping criteria.
        options: SessionOptions,
        /// Tuning algorithm to use.
        strategy: StrategyKind,
    },
    /// Ask for the next configuration to run.
    Fetch,
    /// Report the measured cost of the last fetched configuration.
    Report {
        /// Measured objective (e.g. execution time in seconds).
        cost: f64,
        /// Wall-clock spent obtaining the measurement.
        wall_time: f64,
    },
    /// Ask for up to `max` configurations in one round-trip. Still-unreported
    /// trials from earlier fetches are re-served first (oldest first), then
    /// the session tops the batch up with fresh proposals — for PRO this
    /// surfaces a whole round of independent candidates in one message.
    FetchBatch {
        /// Upper bound on the number of trials returned.
        max: usize,
    },
    /// Report measured costs for any subset of outstanding trials, in one
    /// round-trip. Reports are matched to trials by iteration token, so
    /// order does not matter and partial reports are fine.
    ReportBatch {
        /// One entry per measured trial.
        reports: Vec<TrialReport>,
    },
    /// Ask for the best configuration so far.
    QueryBest,
    /// Ask for the full evaluation history of the session (used by tests,
    /// diagnostics, and trajectory-equivalence checks).
    QueryHistory,
    /// Stop the server.
    Shutdown,
}

/// One measured result inside a [`Request::ReportBatch`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialReport {
    /// Iteration token of the fetched trial this result belongs to.
    pub iteration: usize,
    /// Measured objective (e.g. execution time in seconds).
    pub cost: f64,
    /// Wall-clock spent obtaining the measurement.
    pub wall_time: f64,
}

/// One trial inside a [`Reply::Configs`] batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchedTrial {
    /// The configuration to run.
    pub config: Configuration,
    /// Iteration token; echo it back in the matching [`TrialReport`].
    pub iteration: usize,
}

/// Server → client messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Reply {
    /// Registration succeeded; use this id in future envelopes.
    Registered {
        /// The allocated client id.
        client_id: u64,
        /// The session this client belongs to. Equal to `client_id` for a
        /// fresh `Register`; echoes the joined session for `Attach`. Pass
        /// it to `Attach` to rejoin after a disconnect.
        session: u64,
    },
    /// Request succeeded with nothing to return.
    Ok,
    /// A configuration to run (or, when `finished`, the final best).
    Config {
        /// The configuration.
        config: Configuration,
        /// 1-based evaluation index.
        iteration: usize,
        /// True once the session has stopped — `config` is then the best
        /// found and no further `Report` is expected.
        finished: bool,
    },
    /// A batch of configurations to run (reply to [`Request::FetchBatch`]).
    Configs {
        /// The trials to measure; may be fewer than requested (strategy
        /// waiting on outstanding reports) or empty with `finished`.
        trials: Vec<FetchedTrial>,
        /// True once the session has stopped; no further trials will come.
        finished: bool,
    },
    /// Best configuration so far, if any evaluation happened.
    Best {
        /// `(configuration, cost)` of the best evaluation.
        best: Option<(Configuration, f64)>,
    },
    /// Full evaluation history (reply to [`Request::QueryHistory`]).
    History {
        /// Every evaluation in flush order.
        history: crate::history::History,
        /// True once the session has stopped.
        finished: bool,
    },
    /// The request failed.
    Error {
        /// Human-readable reason.
        message: String,
        /// True when the condition is transient (e.g. the server is at its
        /// connection cap) and the client should retry with backoff.
        retryable: bool,
    },
}

/// Clamp one measurement at the protocol boundary: a non-finite cost
/// becomes `+inf` (NaN would scramble cost ordering; `-inf` would become an
/// unbeatable false best) and a non-finite wall time becomes `0.0` (it
/// would poison the history's cumulative-time column). Returns the
/// sanitized pair and whether anything was clamped. Applied to `Report`
/// and `ReportBatch` before a session sees the values — a hostile or buggy
/// client must not be able to corrupt the shared trajectory. Note the wire
/// format makes this reachable: raw JSON like `1e999` parses to `+inf`.
pub fn sanitize_measurement(cost: f64, wall_time: f64) -> (f64, f64, bool) {
    let clamped = !cost.is_finite() || !wall_time.is_finite();
    (
        if cost.is_finite() {
            cost
        } else {
            f64::INFINITY
        },
        if wall_time.is_finite() {
            wall_time
        } else {
            0.0
        },
        clamped,
    )
}

impl Reply {
    /// A fatal error reply.
    pub fn err(message: impl Into<String>) -> Self {
        Reply::Error {
            message: message.into(),
            retryable: false,
        }
    }

    /// A transient error reply the client should retry with backoff.
    pub fn busy(message: impl Into<String>) -> Self {
        Reply::Error {
            message: message.into(),
            retryable: true,
        }
    }
}

/// One request in flight, with its reply channel (not serialized — the
/// envelope is the in-process framing around the serializable payload).
#[derive(Debug)]
pub struct Envelope {
    /// Sender's client id (0 before registration).
    pub client: u64,
    /// The request payload.
    pub req: Request,
    /// Where to deliver the reply.
    pub reply: Sender<Reply>,
    /// When the envelope entered its shard queue (feeds the
    /// `shard_queue_wait` latency histogram).
    pub queued_at: std::time::Instant,
}

impl Envelope {
    /// Build an envelope stamped with the current instant.
    pub fn new(client: u64, req: Request, reply: Sender<Reply>) -> Self {
        Envelope {
            client,
            req,
            reply,
            queued_at: std::time::Instant::now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_json() {
        let msgs = vec![
            Request::Register { app: "gs2".into() },
            Request::Attach { session: 17 },
            Request::Heartbeat,
            Request::Leave,
            Request::QueryHistory,
            Request::AddParam {
                param: Param::int("negrid", 4, 32, 2),
            },
            Request::AddMonotoneChain {
                names: vec!["b1".into(), "b2".into()],
            },
            Request::Seal {
                options: SessionOptions::default(),
                strategy: StrategyKind::Grid { target: 100 },
            },
            Request::Fetch,
            Request::Report {
                cost: 55.06,
                wall_time: 60.0,
            },
            Request::FetchBatch { max: 9 },
            Request::ReportBatch {
                reports: vec![
                    TrialReport {
                        iteration: 4,
                        cost: 1.25,
                        wall_time: 2.5,
                    },
                    TrialReport {
                        iteration: 7,
                        cost: 0.5,
                        wall_time: 0.5,
                    },
                ],
            },
            Request::QueryBest,
            Request::Shutdown,
        ];
        for m in msgs {
            let s = serde_json::to_string(&m).unwrap();
            let back: Request = serde_json::from_str(&s).unwrap();
            // Compare via re-serialization (Request has no PartialEq because
            // SessionOptions carries floats we still want exact here).
            assert_eq!(s, serde_json::to_string(&back).unwrap());
        }
    }

    #[test]
    fn replies_roundtrip_through_json() {
        let space = crate::space::SearchSpace::builder()
            .int("x", 0, 5, 1)
            .build()
            .unwrap();
        let msgs = vec![
            Reply::Registered {
                client_id: 3,
                session: 3,
            },
            Reply::Ok,
            Reply::History {
                history: crate::history::History::new(),
                finished: false,
            },
            Reply::busy("server at connection capacity (4)"),
            Reply::Config {
                config: space.center(),
                iteration: 2,
                finished: false,
            },
            Reply::Configs {
                trials: vec![
                    FetchedTrial {
                        config: space.center(),
                        iteration: 1,
                    },
                    FetchedTrial {
                        config: space.center(),
                        iteration: 2,
                    },
                ],
                finished: false,
            },
            Reply::Configs {
                trials: vec![],
                finished: true,
            },
            Reply::Best {
                best: Some((space.center(), 1.5)),
            },
            Reply::err("nope"),
        ];
        for m in msgs {
            let s = serde_json::to_string(&m).unwrap();
            let back: Reply = serde_json::from_str(&s).unwrap();
            assert_eq!(s, serde_json::to_string(&back).unwrap());
        }
    }
}

//! Wire protocol between Harmony clients and the server.
//!
//! Every message is serde-serializable, so the protocol can cross a process
//! boundary; the in-process transport used here carries `(client id, request,
//! reply channel)` envelopes over a crossbeam channel.

use crate::param::Param;
use crate::session::SessionOptions;
use crate::space::Configuration;
use crossbeam::channel::Sender;
use serde::{Deserialize, Serialize};

/// Which tuning algorithm the server should run for a client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Discrete Nelder–Mead simplex (the default adaptation controller).
    NelderMead,
    /// Uniform random sampling baseline.
    Random,
    /// Systematic sampling with a sample budget.
    Grid {
        /// Approximate number of evenly spaced samples.
        target: usize,
    },
    /// Parallel Rank Ordering (batch simplex; candidates of one round are
    /// independent and may be measured concurrently).
    Pro,
    /// Coupled simulated annealing (adaptive temperature, lattice-aware
    /// neighbors, reheating on stagnation).
    Annealing,
    /// Genetic algorithm with synergy-pair seeding; generations are
    /// batched like PRO rounds.
    Genetic,
    /// Surrogate-assisted search (quadratic model over the evaluation
    /// history, Nelder–Mead fallback).
    Surrogate,
}

impl StrategyKind {
    /// Instantiate the strategy this kind names. Shared by the server's
    /// `Seal` handler and by write-ahead-log replay, so both construct the
    /// exact same strategy state for a given kind.
    pub fn build(&self) -> Box<dyn crate::strategy::SearchStrategy> {
        use crate::strategy::{
            Annealing, Genetic, GridSearch, NelderMead, ParallelRankOrder, RandomSearch, Surrogate,
        };
        match self {
            StrategyKind::NelderMead => Box::new(NelderMead::default()),
            StrategyKind::Random => Box::new(RandomSearch::new()),
            StrategyKind::Grid { target } => Box::new(GridSearch::new(*target)),
            StrategyKind::Pro => Box::new(ParallelRankOrder::default()),
            StrategyKind::Annealing => Box::new(Annealing::default()),
            StrategyKind::Genetic => Box::new(Genetic::default()),
            StrategyKind::Surrogate => Box::new(Surrogate::default()),
        }
    }
}

/// Client → server messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Introduce a new client application.
    Register {
        /// Application label (for logs and prior-run keys).
        app: String,
        /// Tenant the founded session is accounted to (quotas and
        /// fair dispatch). Empty means the `"default"` tenant, so frames
        /// from older clients stay wire-compatible.
        #[serde(default)]
        tenant: String,
    },
    /// Join an existing tuning session as an additional worker (or rejoin
    /// it after a crash). The session id is the one returned by
    /// [`Reply::Registered`]; the joining connection gets its own client id
    /// and may fetch/report trials of the shared session.
    Attach {
        /// Session to join.
        session: u64,
        /// Tenant this worker acts for. Informational: the session keeps
        /// its founder's tenant for quota/dispatch accounting. Empty means
        /// `"default"` (wire-compatible with older clients).
        #[serde(default)]
        tenant: String,
    },
    /// Liveness signal: refreshes this client's `last_seen` so deadline
    /// eviction does not requeue its outstanding trials while a long
    /// measurement is still running.
    Heartbeat,
    /// Depart from the session. Outstanding trials held by this client are
    /// requeued for other workers. Sent explicitly by well-behaved clients
    /// and synthesised by the TCP front-end when a connection drops.
    Leave,
    /// Declare one tunable parameter (pre-seal only).
    AddParam {
        /// The parameter declaration.
        param: Param,
    },
    /// Declare a monotone-chain dependency between parameters (pre-seal).
    AddMonotoneChain {
        /// Parameter names in chain order.
        names: Vec<String>,
    },
    /// Finish declaration and start tuning.
    Seal {
        /// Session stopping criteria.
        options: SessionOptions,
        /// Tuning algorithm to use.
        strategy: StrategyKind,
    },
    /// Ask for the next configuration to run.
    Fetch,
    /// Report the measured cost of the last fetched configuration.
    Report {
        /// Measured objective (e.g. execution time in seconds).
        cost: f64,
        /// Wall-clock spent obtaining the measurement.
        wall_time: f64,
    },
    /// Ask for up to `max` configurations in one round-trip. Still-unreported
    /// trials from earlier fetches are re-served first (oldest first), then
    /// the session tops the batch up with fresh proposals — for PRO this
    /// surfaces a whole round of independent candidates in one message.
    FetchBatch {
        /// Upper bound on the number of trials returned.
        max: usize,
    },
    /// Report measured costs for any subset of outstanding trials, in one
    /// round-trip. Reports are matched to trials by iteration token, so
    /// order does not matter and partial reports are fine.
    ReportBatch {
        /// One entry per measured trial.
        reports: Vec<TrialReport>,
    },
    /// Ask for the best configuration so far.
    QueryBest,
    /// Ask for the full evaluation history of the session (used by tests,
    /// diagnostics, and trajectory-equivalence checks).
    QueryHistory,
    /// Stop the server.
    Shutdown,
}

/// One measured result inside a [`Request::ReportBatch`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialReport {
    /// Iteration token of the fetched trial this result belongs to.
    pub iteration: usize,
    /// Measured objective (e.g. execution time in seconds).
    pub cost: f64,
    /// Wall-clock spent obtaining the measurement.
    pub wall_time: f64,
}

/// One trial inside a [`Reply::Configs`] batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FetchedTrial {
    /// The configuration to run.
    pub config: Configuration,
    /// Iteration token; echo it back in the matching [`TrialReport`].
    pub iteration: usize,
}

/// Server → client messages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Reply {
    /// Registration succeeded; use this id in future envelopes.
    Registered {
        /// The allocated client id.
        client_id: u64,
        /// The session this client belongs to. Equal to `client_id` for a
        /// fresh `Register`; echoes the joined session for `Attach`. Pass
        /// it to `Attach` to rejoin after a disconnect.
        session: u64,
    },
    /// Request succeeded with nothing to return.
    Ok,
    /// A configuration to run (or, when `finished`, the final best).
    Config {
        /// The configuration.
        config: Configuration,
        /// 1-based evaluation index.
        iteration: usize,
        /// True once the session has stopped — `config` is then the best
        /// found and no further `Report` is expected.
        finished: bool,
    },
    /// A batch of configurations to run (reply to [`Request::FetchBatch`]).
    Configs {
        /// The trials to measure; may be fewer than requested (strategy
        /// waiting on outstanding reports) or empty with `finished`.
        trials: Vec<FetchedTrial>,
        /// True once the session has stopped; no further trials will come.
        finished: bool,
    },
    /// Best configuration so far, if any evaluation happened.
    Best {
        /// `(configuration, cost)` of the best evaluation.
        best: Option<(Configuration, f64)>,
    },
    /// Full evaluation history (reply to [`Request::QueryHistory`]).
    History {
        /// Every evaluation in flush order.
        history: crate::history::History,
        /// True once the session has stopped.
        finished: bool,
    },
    /// The request failed.
    Error {
        /// Human-readable reason.
        message: String,
        /// True when the condition is transient (e.g. the server is at its
        /// connection cap) and the client should retry with backoff.
        retryable: bool,
    },
    /// The request was refused because its tenant is at a configured
    /// quota (sessions or in-flight trials). Distinct from the generic
    /// retryable [`Reply::Error`] so clients can classify the refusal:
    /// it is transient — capacity frees up as the tenant's other work
    /// completes — and maps to `HarmonyError::QuotaExceeded`.
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: String,
    },
}

/// Clamp one measurement at the protocol boundary: a non-finite cost
/// becomes `+inf` (NaN would scramble cost ordering; `-inf` would become an
/// unbeatable false best) and a non-finite wall time becomes `0.0` (it
/// would poison the history's cumulative-time column). Returns the
/// sanitized pair and whether anything was clamped. Applied to `Report`
/// and `ReportBatch` before a session sees the values — a hostile or buggy
/// client must not be able to corrupt the shared trajectory. Note the wire
/// format makes this reachable: raw JSON like `1e999` parses to `+inf`.
pub fn sanitize_measurement(cost: f64, wall_time: f64) -> (f64, f64, bool) {
    let clamped = !cost.is_finite() || !wall_time.is_finite();
    (
        if cost.is_finite() {
            cost
        } else {
            f64::INFINITY
        },
        if wall_time.is_finite() {
            wall_time
        } else {
            0.0
        },
        clamped,
    )
}

impl Reply {
    /// A fatal error reply.
    pub fn err(message: impl Into<String>) -> Self {
        Reply::Error {
            message: message.into(),
            retryable: false,
        }
    }

    /// A transient error reply the client should retry with backoff.
    pub fn busy(message: impl Into<String>) -> Self {
        Reply::Error {
            message: message.into(),
            retryable: true,
        }
    }
}

/// Where a shard worker delivers its reply. Blocking callers (the
/// in-process client, the thread-per-connection transport) hand over a
/// channel and park on its receiving end; the event loop cannot park, so
/// it hands over a [`CompletionSink`] that enqueues the reply and wakes the
/// owning loop thread instead.
pub enum ReplySink {
    /// Deliver into a bounded channel a blocked caller is `recv()`ing on.
    Channel(Sender<Reply>),
    /// Deliver into an event loop's completion queue, tagged with the
    /// connection token the loop uses to route it.
    Completion {
        /// The loop-owned queue (plus waker) to complete into.
        sink: std::sync::Arc<dyn CompletionSink>,
        /// Connection token echoed back with the reply.
        token: u64,
    },
    /// Nobody is waiting (synthesised `Leave` for a connection that is
    /// already gone).
    Discard,
}

/// A queue replies can be completed into without blocking the shard worker.
pub trait CompletionSink: Send + Sync {
    /// Enqueue `reply` for the connection identified by `token` and wake
    /// the consumer. Must not block.
    fn complete(&self, token: u64, reply: Reply);
}

impl ReplySink {
    /// Deliver the reply, consuming the sink. Delivery failure (receiver
    /// gone) is ignored — the requester vanished, which the caller already
    /// handles through its own disconnect path.
    pub fn deliver(self, reply: Reply) {
        match self {
            ReplySink::Channel(tx) => {
                let _ = tx.send(reply);
            }
            ReplySink::Completion { sink, token } => sink.complete(token, reply),
            ReplySink::Discard => {}
        }
    }
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplySink::Channel(_) => f.write_str("ReplySink::Channel"),
            ReplySink::Completion { token, .. } => {
                write!(f, "ReplySink::Completion({token})")
            }
            ReplySink::Discard => f.write_str("ReplySink::Discard"),
        }
    }
}

/// One request in flight, with its reply path (not serialized — the
/// envelope is the in-process framing around the serializable payload).
#[derive(Debug)]
pub struct Envelope {
    /// Sender's client id (0 before registration).
    pub client: u64,
    /// The request payload.
    pub req: Request,
    /// Where to deliver the reply.
    pub reply: ReplySink,
    /// When the envelope entered its shard queue (feeds the
    /// `shard_queue_wait` latency histogram).
    pub queued_at: std::time::Instant,
}

impl Envelope {
    /// Build an envelope stamped with the current instant, replying into a
    /// channel (the blocking callers' path).
    pub fn new(client: u64, req: Request, reply: Sender<Reply>) -> Self {
        Envelope::with_sink(client, req, ReplySink::Channel(reply))
    }

    /// Build an envelope with an explicit [`ReplySink`].
    pub fn with_sink(client: u64, req: Request, reply: ReplySink) -> Self {
        Envelope {
            client,
            req,
            reply,
            queued_at: std::time::Instant::now(),
        }
    }
}

/// Ceiling on one wire frame (one newline-terminated JSON line) accepted by
/// the nonblocking front-end. Generous: a `ReportBatch` entry is tens of
/// bytes, so this covers batches tens of thousands of trials deep. The cap
/// exists so a peer streaming garbage (or a length-prefix-style binary
/// blob) without ever sending `\n` produces a clean protocol error instead
/// of growing a buffer forever.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// Incremental newline-frame decoder: the nonblocking transport's
/// equivalent of `BufRead::read_line`. Bytes arrive in arbitrary chunks
/// ([`extend`](Self::extend)); complete frames come out of
/// [`next_frame`](Self::next_frame) exactly as the blocking reader would
/// have produced them (split on `\n`, trailing `\r` stripped), regardless
/// of where the chunk boundaries fell.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes before this offset were consumed by returned frames; the
    /// prefix is compacted away lazily to keep `extend` amortized O(n).
    pos: usize,
    max_frame: usize,
    poisoned: bool,
}

/// A frame exceeded the decoder's cap without a terminating newline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameTooLong {
    /// The configured ceiling, for the error message sent to the peer.
    pub limit: usize,
}

impl std::fmt::Display for FrameTooLong {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame exceeds {} bytes without a newline", self.limit)
    }
}

impl FrameDecoder {
    /// Decoder enforcing `max_frame` bytes per line ([`MAX_FRAME_LEN`] is
    /// the transport's default).
    pub fn new(max_frame: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_frame: max_frame.max(1),
            poisoned: false,
        }
    }

    /// Feed a chunk of received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, or `None` when more bytes are needed.
    /// Returns `Err` once the unterminated tail outgrows the cap; the
    /// decoder stays poisoned afterwards (the stream has no recoverable
    /// framing), so the owner must error out and close.
    pub fn next_frame(&mut self) -> std::result::Result<Option<String>, FrameTooLong> {
        if self.poisoned {
            return Err(FrameTooLong {
                limit: self.max_frame,
            });
        }
        let tail = &self.buf[self.pos..];
        match tail.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let mut end = nl;
                if end > 0 && tail[end - 1] == b'\r' {
                    end -= 1;
                }
                if end > self.max_frame {
                    self.poisoned = true;
                    return Err(FrameTooLong {
                        limit: self.max_frame,
                    });
                }
                let frame = String::from_utf8_lossy(&tail[..end]).into_owned();
                self.pos += nl + 1;
                Ok(Some(frame))
            }
            None if tail.len() > self.max_frame => {
                self.poisoned = true;
                Err(FrameTooLong {
                    limit: self.max_frame,
                })
            }
            None => Ok(None),
        }
    }

    /// The unterminated remainder at EOF, exactly as `BufRead::lines`
    /// yields a final line with no trailing newline. Empty tail → `None`.
    pub fn finish(&mut self) -> Option<String> {
        if self.poisoned || self.pos >= self.buf.len() {
            return None;
        }
        // No `\r` stripping here: `BufRead::lines` only strips a CR that
        // precedes the terminating LF, and this tail has no LF.
        let tail = &self.buf[self.pos..];
        let frame = String::from_utf8_lossy(tail).into_owned();
        self.pos = self.buf.len();
        Some(frame)
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// What the blocking transport's reader produces for `bytes`: the
    /// ground truth the incremental decoder must reproduce byte for byte.
    fn blocking_lines(bytes: &[u8]) -> Vec<String> {
        use std::io::BufRead;
        std::io::BufReader::new(bytes)
            .lines()
            .map(|l| l.expect("in-memory read"))
            .collect()
    }

    /// Run `bytes` through the decoder, cutting the stream at `splits`
    /// (arbitrary chunk boundaries, as TCP would).
    fn decoded_frames(bytes: &[u8], splits: &[usize]) -> Vec<String> {
        let mut dec = FrameDecoder::new(MAX_FRAME_LEN);
        let mut frames = Vec::new();
        let mut cuts: Vec<usize> = splits.iter().map(|s| s % (bytes.len() + 1)).collect();
        cuts.push(0);
        cuts.push(bytes.len());
        cuts.sort_unstable();
        for pair in cuts.windows(2) {
            dec.extend(&bytes[pair[0]..pair[1]]);
            while let Some(frame) = dec.next_frame().expect("under the cap") {
                frames.push(frame);
            }
        }
        frames.extend(dec.finish());
        frames
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any frame sequence split at arbitrary byte boundaries decodes
        /// identically to the blocking `BufRead::lines` reader.
        #[test]
        fn decoder_matches_blocking_reader_under_any_split(
            lens in proptest::collection::vec(0usize..40, 0..8),
            splits in proptest::collection::vec(0usize..512, 0..6),
            style in 0u8..4,
        ) {
            // Build a stream of frames in several framing styles: plain LF,
            // CRLF, empty lines, and an unterminated tail.
            let mut bytes = Vec::new();
            for (i, len) in lens.iter().enumerate() {
                let payload: String = (0..*len)
                    .map(|j| char::from(b'!' + ((i * 7 + j * 13) % 90) as u8))
                    .collect();
                bytes.extend_from_slice(payload.as_bytes());
                match (style + i as u8) % 3 {
                    0 => bytes.push(b'\n'),
                    1 => bytes.extend_from_slice(b"\r\n"),
                    _ => bytes.extend_from_slice(b"\n\n"), // plus an empty frame
                }
            }
            if style == 3 {
                bytes.extend_from_slice(b"unterminated tail");
            }
            prop_assert_eq!(decoded_frames(&bytes, &splits), blocking_lines(&bytes));
        }

        /// Oversized frames (no newline inside the cap — garbage, or a
        /// binary length-prefix protocol pointed at the wrong port) produce
        /// a clean error as soon as the cap is crossed, never a hang or an
        /// unbounded buffer, and the decoder stays poisoned.
        #[test]
        fn oversized_frames_error_cleanly(cap in 8usize..64, chunk in 1usize..17) {
            let mut dec = FrameDecoder::new(cap);
            let garbage = vec![0x7fu8; cap * 3];
            let mut fed = 0;
            let mut failed = false;
            for piece in garbage.chunks(chunk) {
                dec.extend(piece);
                fed += piece.len();
                match dec.next_frame() {
                    Ok(None) => prop_assert!(fed <= cap + chunk, "cap not enforced"),
                    Ok(Some(f)) => prop_assert!(false, "decoded garbage frame {f:?}"),
                    Err(e) => {
                        prop_assert_eq!(e.limit, cap);
                        failed = true;
                        break;
                    }
                }
            }
            prop_assert!(failed, "oversized stream must error");
            // Poisoned: even a valid frame afterwards keeps erroring.
            dec.extend(b"{}\n");
            prop_assert!(dec.next_frame().is_err());
        }
    }

    #[test]
    fn oversized_terminated_frame_is_rejected_too() {
        // A newline does arrive, but the line before it is over the cap:
        // still a protocol error (the peer can craft arbitrarily large
        // frames otherwise).
        let mut dec = FrameDecoder::new(8);
        dec.extend(b"0123456789ABCDEF\n");
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn requests_roundtrip_through_json() {
        let msgs = vec![
            Request::Register {
                app: "gs2".into(),
                tenant: String::new(),
            },
            Request::Register {
                app: "gs2".into(),
                tenant: "team-a".into(),
            },
            Request::Attach {
                session: 17,
                tenant: String::new(),
            },
            Request::Attach {
                session: 17,
                tenant: "team-b".into(),
            },
            Request::Heartbeat,
            Request::Leave,
            Request::QueryHistory,
            Request::AddParam {
                param: Param::int("negrid", 4, 32, 2),
            },
            Request::AddMonotoneChain {
                names: vec!["b1".into(), "b2".into()],
            },
            Request::Seal {
                options: SessionOptions::default(),
                strategy: StrategyKind::Grid { target: 100 },
            },
            Request::Fetch,
            Request::Report {
                cost: 55.06,
                wall_time: 60.0,
            },
            Request::FetchBatch { max: 9 },
            Request::ReportBatch {
                reports: vec![
                    TrialReport {
                        iteration: 4,
                        cost: 1.25,
                        wall_time: 2.5,
                    },
                    TrialReport {
                        iteration: 7,
                        cost: 0.5,
                        wall_time: 0.5,
                    },
                ],
            },
            Request::QueryBest,
            Request::Shutdown,
        ];
        for m in msgs {
            let s = serde_json::to_string(&m).unwrap();
            let back: Request = serde_json::from_str(&s).unwrap();
            // Compare via re-serialization (Request has no PartialEq because
            // SessionOptions carries floats we still want exact here).
            assert_eq!(s, serde_json::to_string(&back).unwrap());
        }
    }

    #[test]
    fn tenantless_frames_from_older_clients_still_parse() {
        // PR-6-era clients send Register/Attach without a tenant field;
        // `#[serde(default)]` must map that to the empty (default) tenant.
        let req: Request = serde_json::from_str("{\"Register\":{\"app\":\"gs2\"}}").unwrap();
        match req {
            Request::Register { app, tenant } => {
                assert_eq!(app, "gs2");
                assert!(tenant.is_empty());
            }
            other => panic!("expected Register, got {other:?}"),
        }
        let req: Request = serde_json::from_str("{\"Attach\":{\"session\":5}}").unwrap();
        match req {
            Request::Attach { session, tenant } => {
                assert_eq!(session, 5);
                assert!(tenant.is_empty());
            }
            other => panic!("expected Attach, got {other:?}"),
        }
    }

    #[test]
    fn replies_roundtrip_through_json() {
        let space = crate::space::SearchSpace::builder()
            .int("x", 0, 5, 1)
            .build()
            .unwrap();
        let msgs = vec![
            Reply::Registered {
                client_id: 3,
                session: 3,
            },
            Reply::Ok,
            Reply::History {
                history: crate::history::History::new(),
                finished: false,
            },
            Reply::busy("server at connection capacity (4)"),
            Reply::Config {
                config: space.center(),
                iteration: 2,
                finished: false,
            },
            Reply::Configs {
                trials: vec![
                    FetchedTrial {
                        config: space.center(),
                        iteration: 1,
                    },
                    FetchedTrial {
                        config: space.center(),
                        iteration: 2,
                    },
                ],
                finished: false,
            },
            Reply::Configs {
                trials: vec![],
                finished: true,
            },
            Reply::Best {
                best: Some((space.center(), 1.5)),
            },
            Reply::err("nope"),
            Reply::QuotaExceeded {
                tenant: "team-a".into(),
            },
        ];
        for m in msgs {
            let s = serde_json::to_string(&m).unwrap();
            let back: Reply = serde_json::from_str(&s).unwrap();
            assert_eq!(s, serde_json::to_string(&back).unwrap());
        }
    }
}

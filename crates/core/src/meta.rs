//! Meta-tuning: tuning the tuner.
//!
//! The paper's tuning runs expose a second-order problem: the search
//! strategies themselves have hyper-parameters (simplex scale, annealing
//! schedule, population size, surrogate refit cadence) and a poorly chosen
//! setting can double the number of application runs needed to reach an
//! acceptable configuration. This module closes the loop: an *outer*
//! Harmony session searches a strategy's hyper-parameter space, scoring
//! each hyper-configuration by **evaluations-to-target** — the number of
//! fresh short runs the *inner* campaign spends before its best cost
//! reaches a target (penalised when it never does).
//!
//! Inner campaigns are deterministic (seeded) and their scores are
//! memoized in the [`SharedStore`] under a `meta/<strategy>/<problem>`
//! label keyed by the hyper-space fingerprint and the hyper-configuration
//! cache key. A second meta run against the same store replays every
//! campaign from the store and spends **zero** fresh inner evaluations —
//! the same cross-invocation warm start the first-order tuner gets from
//! its performance store.
//!
//! ```
//! use ah_core::meta::{MetaAnnealing, MetaOptions, MetaTuner};
//! use ah_core::offline::{RunMeasurement, ShortRunApp};
//! use ah_core::prelude::*;
//!
//! struct Bowl;
//! impl ShortRunApp for Bowl {
//!     fn space(&self) -> SearchSpace {
//!         SearchSpace::builder()
//!             .int("x", 0, 40, 1)
//!             .int("y", 0, 40, 1)
//!             .build()
//!             .unwrap()
//!     }
//!     fn default_config(&self) -> Configuration {
//!         self.space().center()
//!     }
//!     fn run_short(&mut self, cfg: &Configuration) -> RunMeasurement {
//!         let x = cfg.int("x").unwrap() as f64;
//!         let y = cfg.int("y").unwrap() as f64;
//!         RunMeasurement::pure((x - 31.0).powi(2) + (y - 7.0).powi(2) + 1.0)
//!     }
//! }
//!
//! let opts = MetaOptions {
//!     outer_evaluations: 6,
//!     inner_budget: 60,
//!     target_cost: 3.0,
//!     ..MetaOptions::default()
//! };
//! let outcome = MetaTuner::new(opts).tune(&mut Bowl, "bowl", &MetaAnnealing);
//! assert!(outcome.best_score <= outcome.default_score);
//! ```

use crate::offline::ShortRunApp;
use crate::session::{SessionOptions, StopReason, TuningSession};
use crate::space::{Configuration, SearchSpace};
use crate::store::{space_fingerprint, SharedStore, StoreRecord};
use crate::strategy::{
    Annealing, AnnealingOptions, Genetic, GeneticOptions, NelderMead, NelderMeadOptions,
    SearchStrategy, StartPoint, Surrogate, SurrogateOptions,
};
use crate::telemetry::{Counter, Telemetry};
use serde::Serialize;

/// A strategy whose hyper-parameters can themselves be tuned.
///
/// Implementations expose their hyper-parameters as an ordinary
/// [`SearchSpace`] (integer-scaled, so hyper-configurations have exact
/// cache keys for memoization) and build a fresh strategy instance from
/// any hyper-configuration in it.
pub trait MetaTunable {
    /// Identifier used in reports and store labels (e.g. `"annealing"`).
    fn name(&self) -> &'static str;

    /// The hyper-parameter search space.
    fn hyper_space(&self) -> SearchSpace;

    /// The strategy's shipped default hyper-configuration (the baseline
    /// the meta-tuner must beat), expressed in `space`.
    fn default_hyper(&self, space: &SearchSpace) -> Configuration;

    /// Instantiate the inner strategy from a hyper-configuration.
    fn build(&self, hyper: &Configuration) -> Box<dyn SearchStrategy>;
}

/// Meta-tunes [`NelderMead`]: initial simplex scale and reflection weight.
pub struct MetaNelderMead;

impl MetaTunable for MetaNelderMead {
    fn name(&self) -> &'static str {
        "nelder-mead"
    }

    fn hyper_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .int("init_scale_pct", 5, 50, 5)
            .int("alpha_pct", 50, 150, 25)
            .build()
            .expect("static hyper space")
    }

    fn default_hyper(&self, space: &SearchSpace) -> Configuration {
        let d = NelderMeadOptions::default();
        hyper_config(
            space,
            &[
                ("init_scale_pct", (d.init_scale * 100.0).round() as i64),
                ("alpha_pct", (d.alpha * 100.0).round() as i64),
            ],
        )
    }

    fn build(&self, hyper: &Configuration) -> Box<dyn SearchStrategy> {
        Box::new(NelderMead::new(NelderMeadOptions {
            init_scale: pct(hyper, "init_scale_pct"),
            alpha: pct(hyper, "alpha_pct"),
            ..NelderMeadOptions::default()
        }))
    }
}

/// Meta-tunes [`Annealing`]: initial temperature scale, cooling rate, and
/// the stagnation window before a reheat.
pub struct MetaAnnealing;

impl MetaTunable for MetaAnnealing {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn hyper_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .int("t0_scale_pct", 25, 400, 25)
            .int("cooling_pct", 80, 98, 2)
            .int("reheat_after", 5, 25, 5)
            .build()
            .expect("static hyper space")
    }

    fn default_hyper(&self, space: &SearchSpace) -> Configuration {
        let d = AnnealingOptions::default();
        hyper_config(
            space,
            &[
                ("t0_scale_pct", (d.t0_scale * 100.0).round() as i64),
                ("cooling_pct", (d.cooling * 100.0).round() as i64),
                ("reheat_after", d.reheat_after as i64),
            ],
        )
    }

    fn build(&self, hyper: &Configuration) -> Box<dyn SearchStrategy> {
        Box::new(Annealing::new(AnnealingOptions {
            t0_scale: pct(hyper, "t0_scale_pct"),
            cooling: pct(hyper, "cooling_pct"),
            reheat_after: hyper.int("reheat_after").expect("hyper param") as usize,
            ..AnnealingOptions::default()
        }))
    }
}

/// Meta-tunes [`Genetic`]: population size, mutation rate, and how hard
/// the synergy pairs bias crossover.
pub struct MetaGenetic;

impl MetaTunable for MetaGenetic {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn hyper_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .int("population", 6, 20, 2)
            .int("mutation_pct", 5, 40, 5)
            .int("synergy_pct", 0, 80, 20)
            .build()
            .expect("static hyper space")
    }

    fn default_hyper(&self, space: &SearchSpace) -> Configuration {
        let d = GeneticOptions::default();
        hyper_config(
            space,
            &[
                ("population", d.population as i64),
                ("mutation_pct", (d.mutation * 100.0).round() as i64),
                ("synergy_pct", (d.synergy_bias * 100.0).round() as i64),
            ],
        )
    }

    fn build(&self, hyper: &Configuration) -> Box<dyn SearchStrategy> {
        Box::new(Genetic::new(GeneticOptions {
            population: hyper.int("population").expect("hyper param") as usize,
            mutation: pct(hyper, "mutation_pct"),
            synergy_bias: pct(hyper, "synergy_pct"),
            ..GeneticOptions::default()
        }))
    }
}

/// Meta-tunes [`Surrogate`]: refit cadence and the trust threshold below
/// which model proposals replace the inner strategy.
pub struct MetaSurrogate;

impl MetaTunable for MetaSurrogate {
    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn hyper_space(&self) -> SearchSpace {
        SearchSpace::builder()
            .int("refit_every", 2, 8, 2)
            .int("fit_threshold_pct", 10, 50, 10)
            .build()
            .expect("static hyper space")
    }

    fn default_hyper(&self, space: &SearchSpace) -> Configuration {
        let d = SurrogateOptions::default();
        hyper_config(
            space,
            &[
                ("refit_every", d.refit_every as i64),
                (
                    "fit_threshold_pct",
                    (d.fit_threshold * 100.0).round() as i64,
                ),
            ],
        )
    }

    fn build(&self, hyper: &Configuration) -> Box<dyn SearchStrategy> {
        Box::new(Surrogate::new(SurrogateOptions {
            refit_every: hyper.int("refit_every").expect("hyper param") as usize,
            fit_threshold: pct(hyper, "fit_threshold_pct"),
            ..SurrogateOptions::default()
        }))
    }
}

fn hyper_config(space: &SearchSpace, values: &[(&str, i64)]) -> Configuration {
    let mut coords = space
        .embed(&space.center())
        .expect("center embeds into its own space");
    for (i, param) in space.params().iter().enumerate() {
        if let Some((_, v)) = values.iter().find(|(n, _)| *n == param.name()) {
            coords[i] = *v as f64;
        }
    }
    space.project(&coords)
}

fn pct(hyper: &Configuration, name: &str) -> f64 {
    hyper.int(name).expect("hyper param") as f64 / 100.0
}

/// Options for a [`MetaTuner`] run.
#[derive(Debug, Clone)]
pub struct MetaOptions {
    /// Hyper-configurations the outer search may score (fresh outer
    /// evaluations; memoized scores are replayed for free).
    pub outer_evaluations: usize,
    /// Fresh-evaluation budget of each inner campaign.
    pub inner_budget: usize,
    /// The inner campaign stops (successfully) when its best cost reaches
    /// this target; campaigns that exhaust the budget first are scored
    /// `2 * inner_budget`.
    pub target_cost: f64,
    /// Independent seeded campaigns averaged per hyper-configuration.
    pub campaigns_per_score: usize,
    /// Master seed; outer search and every inner campaign derive from it.
    pub seed: u64,
}

impl Default for MetaOptions {
    fn default() -> Self {
        MetaOptions {
            outer_evaluations: 12,
            inner_budget: 100,
            target_cost: 0.0,
            campaigns_per_score: 3,
            seed: 7,
        }
    }
}

/// One scored hyper-configuration in a meta run's trace.
#[derive(Debug, Clone, Serialize)]
pub struct MetaTrial {
    /// Cache key of the hyper-configuration in the hyper space.
    pub hyper_key: Vec<i64>,
    /// Mean evaluations-to-target across the seeded campaigns.
    pub score: f64,
    /// The score was replayed from the store (no inner campaigns ran).
    pub memoized: bool,
}

/// Result of one meta-tuning run.
#[derive(Debug, Clone, Serialize)]
pub struct MetaOutcome {
    /// The tuned strategy's name.
    pub tunable: String,
    /// The problem label the campaigns ran against.
    pub problem: String,
    /// Evaluations-to-target of the shipped default hyper-configuration.
    pub default_score: f64,
    /// Best hyper-configuration found by the outer search.
    pub best_hyper: Configuration,
    /// Its evaluations-to-target (≤ `default_score`; the default is the
    /// outer search's start point, so it can never regress).
    pub best_score: f64,
    /// Hyper-configurations whose campaigns actually ran this invocation.
    pub fresh_campaigns: usize,
    /// Hyper-configurations replayed from the store.
    pub memoized_campaigns: usize,
    /// Total fresh inner evaluations (application short runs) spent.
    pub inner_evaluations: usize,
    /// Every hyper-configuration scored, in evaluation order.
    pub trace: Vec<MetaTrial>,
}

impl MetaOutcome {
    /// Whether meta-tuning strictly beat the default hyper-parameters.
    pub fn improved(&self) -> bool {
        self.best_score < self.default_score
    }
}

/// Tunes a strategy's hyper-parameters with an outer Harmony session.
///
/// The outer search is a [`NelderMead`] simplex over the integer-scaled
/// hyper space, seeded at the strategy's default hyper-configuration so
/// the reported [`MetaOutcome::best_score`] can never be worse than the
/// default's. See the [module docs](self) for the scoring and memoization
/// contract.
pub struct MetaTuner {
    opts: MetaOptions,
    store: Option<SharedStore>,
    telemetry: Telemetry,
}

impl MetaTuner {
    /// Create a meta-tuner with the given options and no store.
    pub fn new(opts: MetaOptions) -> Self {
        MetaTuner {
            opts,
            store: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Memoize campaign scores in (and replay them from) `store`.
    pub fn with_store(mut self, store: SharedStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Record meta-tuning counters on `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Run the meta-tuning loop for `tunable` against `app`.
    pub fn tune(
        &mut self,
        app: &mut dyn ShortRunApp,
        problem: &str,
        tunable: &dyn MetaTunable,
    ) -> MetaOutcome {
        let hyper_space = tunable.hyper_space();
        let fingerprint = space_fingerprint(&hyper_space);
        let label = format!("meta/{}/{}", tunable.name(), problem);
        let default_hyper = tunable.default_hyper(&hyper_space);

        let mut trace: Vec<MetaTrial> = Vec::new();
        let mut fresh_campaigns = 0usize;
        let mut memoized_campaigns = 0usize;
        let mut inner_evaluations = 0usize;

        let score_hyper = |hyper: &Configuration,
                           trace: &mut Vec<MetaTrial>,
                           fresh: &mut usize,
                           memoized: &mut usize,
                           inner_evals: &mut usize,
                           app: &mut dyn ShortRunApp| {
            let key = hyper.cache_key();
            if let Some(hit) = self
                .store
                .as_ref()
                .and_then(|s| s.lookup(&label, fingerprint, &key))
            {
                *memoized += 1;
                trace.push(MetaTrial {
                    hyper_key: key,
                    score: hit.cost,
                    memoized: true,
                });
                return hit.cost;
            }
            let mut total = 0.0;
            let mut spent = 0usize;
            for campaign in 0..self.opts.campaigns_per_score.max(1) {
                let inner_seed = self
                    .opts
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(campaign as u64 + 1);
                let mut session = TuningSession::new(
                    app.space(),
                    tunable.build(hyper),
                    SessionOptions {
                        max_evaluations: self.opts.inner_budget,
                        seed: inner_seed,
                        target_cost: Some(self.opts.target_cost),
                        ..SessionOptions::default()
                    },
                );
                let result = session.run(|cfg| app.run_short(cfg).exec_time);
                spent += result.history.runs();
                total += if result.stop_reason == StopReason::TargetReached {
                    result.history.runs() as f64
                } else {
                    2.0 * self.opts.inner_budget as f64
                };
                self.telemetry.inc(Counter::MetaInnerCampaigns);
            }
            let score = total / self.opts.campaigns_per_score.max(1) as f64;
            *fresh += 1;
            *inner_evals += spent;
            if let Some(store) = &self.store {
                let _ = store.insert(StoreRecord::new(
                    label.clone(),
                    fingerprint,
                    hyper.clone(),
                    score,
                    spent as f64,
                ));
            }
            trace.push(MetaTrial {
                hyper_key: key,
                score,
                memoized: false,
            });
            score
        };

        // Score the shipped defaults first: the baseline to beat, and the
        // simplex's start vertex (so the outer search replays it for free).
        let default_score = score_hyper(
            &default_hyper,
            &mut trace,
            &mut fresh_campaigns,
            &mut memoized_campaigns,
            &mut inner_evaluations,
            app,
        );

        let start = hyper_space
            .embed(&default_hyper)
            .expect("default hyper embeds into hyper space");
        let outer = NelderMead::new(NelderMeadOptions {
            start: StartPoint::Coords(start),
            ..NelderMeadOptions::default()
        });
        let mut outer_session = TuningSession::new(
            hyper_space.clone(),
            Box::new(outer),
            SessionOptions {
                max_evaluations: self.opts.outer_evaluations,
                seed: self.opts.seed,
                ..SessionOptions::default()
            },
        );
        let outer_result = outer_session.run(|hyper| {
            score_hyper(
                hyper,
                &mut trace,
                &mut fresh_campaigns,
                &mut memoized_campaigns,
                &mut inner_evaluations,
                app,
            )
        });

        let (best_hyper, best_score) = if outer_result.best_cost < default_score {
            (outer_result.best_config, outer_result.best_cost)
        } else {
            (default_hyper, default_score)
        };

        MetaOutcome {
            tunable: tunable.name().to_string(),
            problem: problem.to_string(),
            default_score,
            best_hyper,
            best_score,
            fresh_campaigns,
            memoized_campaigns,
            inner_evaluations,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::RunMeasurement;

    /// A shifted bowl whose optimum sits away from the centre, so default
    /// strategies spend real evaluations finding it.
    struct Bowl;

    impl ShortRunApp for Bowl {
        fn space(&self) -> SearchSpace {
            SearchSpace::builder()
                .int("x", 0, 40, 1)
                .int("y", 0, 40, 1)
                .build()
                .unwrap()
        }

        fn default_config(&self) -> Configuration {
            self.space().center()
        }

        fn run_short(&mut self, cfg: &Configuration) -> RunMeasurement {
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            RunMeasurement::pure((x - 31.0).powi(2) + (y - 7.0).powi(2) + 1.0)
        }
    }

    fn opts() -> MetaOptions {
        MetaOptions {
            outer_evaluations: 8,
            inner_budget: 60,
            target_cost: 5.0,
            campaigns_per_score: 2,
            seed: 11,
        }
    }

    #[test]
    fn default_hypers_round_trip_through_their_spaces() {
        let tunables: Vec<Box<dyn MetaTunable>> = vec![
            Box::new(MetaNelderMead),
            Box::new(MetaAnnealing),
            Box::new(MetaGenetic),
            Box::new(MetaSurrogate),
        ];
        for t in &tunables {
            let space = t.hyper_space();
            let d = t.default_hyper(&space);
            assert!(space.is_valid(&d), "{} default invalid", t.name());
            // Building from the default must succeed and carry the name's
            // strategy (smoke: it proposes something).
            let mut s = t.build(&d);
            let mut rng = rand::SeedableRng::seed_from_u64(0);
            let inner_space = Bowl.space();
            s.init(&inner_space, &mut rng);
            assert!(s.propose(&inner_space, &mut rng).is_some());
        }
    }

    #[test]
    fn best_score_never_regresses_below_the_default() {
        let outcome = MetaTuner::new(opts()).tune(&mut Bowl, "bowl", &MetaAnnealing);
        assert!(outcome.best_score <= outcome.default_score);
        assert!(outcome.fresh_campaigns >= 1);
        assert_eq!(outcome.memoized_campaigns, 0);
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn meta_runs_are_deterministic_under_a_fixed_seed() {
        let a = MetaTuner::new(opts()).tune(&mut Bowl, "bowl", &MetaNelderMead);
        let b = MetaTuner::new(opts()).tune(&mut Bowl, "bowl", &MetaNelderMead);
        assert_eq!(a.default_score, b.default_score);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(x.hyper_key, y.hyper_key);
            assert_eq!(x.score, y.score);
        }
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ah-meta-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.store"))
    }

    #[test]
    fn second_run_replays_every_campaign_from_the_store() {
        let path = temp_store("replay");
        let _ = std::fs::remove_file(&path);
        let store = SharedStore::open(&path).unwrap();
        let first = MetaTuner::new(opts()).with_store(store.clone()).tune(
            &mut Bowl,
            "bowl",
            &MetaAnnealing,
        );
        assert!(first.fresh_campaigns > 0);
        assert!(first.inner_evaluations > 0);

        let second =
            MetaTuner::new(opts())
                .with_store(store)
                .tune(&mut Bowl, "bowl", &MetaAnnealing);
        // Identical trajectory, all memoized: strictly fewer fresh evals.
        assert_eq!(second.fresh_campaigns, 0);
        assert_eq!(second.inner_evaluations, 0);
        assert!(second.inner_evaluations < first.inner_evaluations);
        assert_eq!(second.memoized_campaigns, first.trace.len());
        assert_eq!(second.best_score, first.best_score);
    }

    #[test]
    fn counts_inner_campaigns_on_telemetry() {
        let telemetry = Telemetry::enabled();
        let o = MetaTuner::new(MetaOptions {
            outer_evaluations: 3,
            campaigns_per_score: 2,
            ..opts()
        })
        .with_telemetry(telemetry.clone())
        .tune(&mut Bowl, "bowl", &MetaNelderMead);
        assert_eq!(
            telemetry.counter(Counter::MetaInnerCampaigns),
            (o.fresh_campaigns * 2) as u64
        );
    }

    #[test]
    fn meta_tuning_improves_a_mistuned_annealer() {
        // Make the target tight enough that schedule quality matters.
        let o = MetaTuner::new(MetaOptions {
            outer_evaluations: 14,
            inner_budget: 80,
            target_cost: 2.0,
            campaigns_per_score: 3,
            seed: 5,
        })
        .tune(&mut Bowl, "bowl", &MetaAnnealing);
        assert!(
            o.best_score <= o.default_score,
            "meta made it worse: {} > {}",
            o.best_score,
            o.default_score
        );
    }
}

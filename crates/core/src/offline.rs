//! Off-line, iterative tuning with representative short runs (paper §III).
//!
//! "We added the ability to use multiple representative short runs (e.g.,
//! benchmarking runs) and make tuning modifications between runs. […] Our
//! experiments take all costs of parameter changes (including applications
//! needed to be re-run and their warm up time) into consideration."
//!
//! An application that can be configured, restarted, and run for a short
//! representative period implements [`ShortRunApp`]; the [`OfflineTuner`]
//! drives one short run per tuning iteration and charges run + restart +
//! warm-up time to the tuning budget.

use crate::report::TuningReport;
use crate::session::{SessionOptions, TuningResult, TuningSession};
use crate::space::{Configuration, SearchSpace};
use crate::store::{space_fingerprint, SharedStore, StoreRecord};
use crate::strategy::SearchStrategy;

/// What one representative short run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// The objective: execution time of the representative section, in
    /// seconds. This is what the search minimises.
    pub exec_time: f64,
    /// Warm-up time before the representative section (charged to tuning
    /// time, not to the objective).
    pub warmup_time: f64,
    /// Cost of stopping, reconfiguring, and restarting the application
    /// (charged to tuning time).
    pub restart_cost: f64,
}

impl RunMeasurement {
    /// A measurement with no overheads.
    pub fn pure(exec_time: f64) -> Self {
        RunMeasurement {
            exec_time,
            warmup_time: 0.0,
            restart_cost: 0.0,
        }
    }

    /// Total wall-clock the tuning process paid for this run.
    pub fn total_time(&self) -> f64 {
        self.exec_time + self.warmup_time + self.restart_cost
    }
}

/// An application that can be run briefly under a given configuration.
pub trait ShortRunApp {
    /// The tunable parameters this application exposes.
    fn space(&self) -> SearchSpace;

    /// The application's shipped default configuration.
    fn default_config(&self) -> Configuration;

    /// Reconfigure, restart, and execute one representative short run.
    fn run_short(&mut self, config: &Configuration) -> RunMeasurement;
}

/// Drives off-line iterative tuning of a [`ShortRunApp`].
///
/// # Example
///
/// ```
/// use ah_core::prelude::*;
///
/// struct App;
/// impl ShortRunApp for App {
///     fn space(&self) -> SearchSpace {
///         SearchSpace::builder().int("n", 1, 64, 1).build().unwrap()
///     }
///     fn default_config(&self) -> Configuration {
///         self.space().project(&[1.0])
///     }
///     fn run_short(&mut self, cfg: &Configuration) -> RunMeasurement {
///         let n = cfg.int("n").unwrap() as f64;
///         RunMeasurement::pure(10.0 + (n - 40.0).powi(2) * 0.05)
///     }
/// }
///
/// let tuner = OfflineTuner::new(SessionOptions {
///     max_evaluations: 60,
///     seed: 1,
///     ..Default::default()
/// });
/// let out = tuner.tune(&mut App, Box::new(NelderMead::default()));
/// assert!(out.improvement_pct() > 50.0);
/// ```
pub struct OfflineTuner {
    opts: SessionOptions,
    /// When false, warm-up and restart overheads are ignored in the tuning
    /// time accounting (used by the ablation bench to show why the paper
    /// includes them).
    pub charge_overheads: bool,
    /// Performance store and application label to tune against; see
    /// [`with_store`](Self::with_store).
    store: Option<(SharedStore, String)>,
}

impl OfflineTuner {
    /// Create a tuner with the given session options.
    pub fn new(opts: SessionOptions) -> Self {
        OfflineTuner {
            opts,
            charge_overheads: true,
            store: None,
        }
    }

    /// Tune against a persistent performance store under `app`'s label:
    /// configurations already on record are served from the store — no
    /// short run, no restart, *nothing* charged to the tuning budget — and
    /// every fresh measurement is recorded for future campaigns.
    pub fn with_store(mut self, store: SharedStore, app: impl Into<String>) -> Self {
        self.store = Some((store, app.into()));
        self
    }

    /// Tune the application with the given strategy. The default
    /// configuration is always measured first (iteration 0 in the paper's
    /// tables) so improvement is reported against a measured baseline.
    pub fn tune<A: ShortRunApp + ?Sized>(
        &self,
        app: &mut A,
        strategy: Box<dyn SearchStrategy>,
    ) -> OfflineOutcome {
        let space = app.space();
        let fingerprint = space_fingerprint(&space);
        let default_cfg = app.default_config();
        let mut store_hits = 0usize;
        let lookup = |cfg: &Configuration, hits: &mut usize| -> Option<f64> {
            let (store, label) = self.store.as_ref()?;
            let hit = store.lookup(label, fingerprint, &cfg.cache_key())?;
            *hits += 1;
            Some(hit.cost)
        };
        let record = |cfg: &Configuration, cost: f64, charged: f64, iteration: usize| {
            if let Some((store, label)) = self.store.as_ref() {
                // Advisory write: never fail the campaign over it.
                let _ = store.insert(
                    StoreRecord::new(label.clone(), fingerprint, cfg.clone(), cost, charged)
                        .with_provenance(0, iteration),
                );
            }
        };
        // Stored default: skip the baseline short run entirely — a restart
        // the tuning budget never pays for.
        let (default_cost, mut tuning_time) = match lookup(&default_cfg, &mut store_hits) {
            Some(cost) => (cost, 0.0),
            None => {
                let m = app.run_short(&default_cfg);
                let charged = if self.charge_overheads {
                    m.total_time()
                } else {
                    m.exec_time
                };
                record(&default_cfg, m.exec_time, charged, 0);
                (m.exec_time, charged)
            }
        };
        let mut session = TuningSession::new(space, strategy, self.opts.clone());
        session.preload(&default_cfg, default_cost);
        while let Some(trial) = session.suggest() {
            if let Some(cost) = lookup(&trial.config, &mut store_hits) {
                session
                    .report_stored(trial, cost)
                    .expect("session accepts stored report for its own trial");
                continue;
            }
            let m = app.run_short(&trial.config);
            let charged = if self.charge_overheads {
                m.total_time()
            } else {
                m.exec_time
            };
            tuning_time += charged;
            record(&trial.config, m.exec_time, charged, trial.iteration);
            session
                .report_timed(trial, m.exec_time, charged)
                .expect("session accepts report for its own trial");
        }
        let result = session.result();
        OfflineOutcome {
            default_config: default_cfg,
            default_cost,
            tuning_time,
            store_hits,
            result,
        }
    }
}

/// Everything an off-line tuning campaign produced.
#[derive(Debug, Clone)]
pub struct OfflineOutcome {
    /// The application's default configuration (iteration 0).
    pub default_config: Configuration,
    /// Measured cost of the default configuration.
    pub default_cost: f64,
    /// Total wall-clock spent tuning (all runs + overheads). Evaluations
    /// served from the performance store charge nothing here.
    pub tuning_time: f64,
    /// Evaluations answered by the performance store (0 without a store).
    pub store_hits: usize,
    /// The session result (best configuration, history, stop reason).
    pub result: TuningResult,
}

impl OfflineOutcome {
    /// Paper-style improvement percentage over the default.
    pub fn improvement_pct(&self) -> f64 {
        100.0 * (self.default_cost - self.result.best_cost) / self.default_cost
    }

    /// Paper-style speedup factor over the default.
    pub fn speedup(&self) -> f64 {
        self.default_cost / self.result.best_cost
    }

    /// Condense into a [`TuningReport`] row.
    pub fn report(&self, label: impl Into<String>) -> TuningReport {
        TuningReport {
            label: label.into(),
            default_cost: self.default_cost,
            tuned_cost: self.result.best_cost,
            iterations: self.result.evaluations,
            tuning_time: self.tuning_time,
        }
    }

    /// Improvement after only the first `n` fresh iterations (the paper's
    /// "12.1% improvement after trying just 12 configurations").
    pub fn improvement_pct_after(&self, n: usize) -> f64 {
        let best_after = self
            .result
            .history
            .evaluations()
            .iter()
            .filter(|e| !e.cached)
            .take(n)
            .map(|e| e.cost)
            .fold(self.default_cost, f64::min);
        100.0 * (self.default_cost - best_after) / self.default_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::NelderMead;

    /// A fake application whose runtime is a quadratic bowl plus fixed
    /// restart/warm-up overheads.
    struct FakeApp {
        runs: usize,
    }

    impl ShortRunApp for FakeApp {
        fn space(&self) -> SearchSpace {
            SearchSpace::builder()
                .int("buf", 1, 100, 1)
                .int("threads", 1, 32, 1)
                .build()
                .unwrap()
        }

        fn default_config(&self) -> Configuration {
            self.space()
                .configuration_from_strs([("buf", "1"), ("threads", "1")])
                .unwrap()
        }

        fn run_short(&mut self, config: &Configuration) -> RunMeasurement {
            self.runs += 1;
            let buf = config.int("buf").unwrap() as f64;
            let threads = config.int("threads").unwrap() as f64;
            let exec = 10.0 + 0.02 * (buf - 64.0).powi(2) + 0.5 * (threads - 16.0).powi(2);
            RunMeasurement {
                exec_time: exec,
                warmup_time: 2.0,
                restart_cost: 1.0,
            }
        }
    }

    #[test]
    fn offline_tuning_beats_default_and_counts_overheads() {
        let mut app = FakeApp { runs: 0 };
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 60,
            seed: 11,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        assert!(out.improvement_pct() > 50.0, "{}", out.improvement_pct());
        // One default run + at most 60 tuning runs.
        assert!(app.runs <= 61);
        // Overheads: every run charged at least 3s on top of exec time.
        let min_time = app.runs as f64 * 3.0;
        assert!(out.tuning_time > min_time);
        assert_eq!(out.result.evaluations + 1, app.runs);
    }

    #[test]
    fn improvement_after_prefix_is_monotone() {
        let mut app = FakeApp { runs: 0 };
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 40,
            seed: 12,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        let a = out.improvement_pct_after(5);
        let b = out.improvement_pct_after(20);
        let c = out.improvement_pct_after(40);
        assert!(a <= b + 1e-12 && b <= c + 1e-12, "{a} {b} {c}");
        assert!((c - out.improvement_pct()).abs() < 1e-9);
    }

    #[test]
    fn disabling_overhead_charging_reduces_tuning_time() {
        let mut app1 = FakeApp { runs: 0 };
        let mut app2 = FakeApp { runs: 0 };
        let opts = SessionOptions {
            max_evaluations: 20,
            seed: 13,
            ..Default::default()
        };
        let with = OfflineTuner::new(opts.clone()).tune(&mut app1, Box::new(NelderMead::default()));
        let mut without_tuner = OfflineTuner::new(opts);
        without_tuner.charge_overheads = false;
        let without = without_tuner.tune(&mut app2, Box::new(NelderMead::default()));
        assert!(with.tuning_time > without.tuning_time);
        assert_eq!(with.result.best_cost, without.result.best_cost);
    }

    #[test]
    fn store_backed_retune_serves_everything_and_charges_nothing() {
        let dir = std::env::temp_dir().join(format!("ah-offline-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("retune.store");
        let _ = std::fs::remove_file(&path);
        let store = SharedStore::open(&path).unwrap();
        let opts = SessionOptions {
            max_evaluations: 30,
            seed: 21,
            ..Default::default()
        };
        let mut app1 = FakeApp { runs: 0 };
        let cold = OfflineTuner::new(opts.clone())
            .with_store(store.clone(), "fake")
            .tune(&mut app1, Box::new(NelderMead::default()));
        assert_eq!(cold.store_hits, 0);
        assert!(app1.runs > 0 && cold.tuning_time > 0.0);

        let mut app2 = FakeApp { runs: 0 };
        let warm = OfflineTuner::new(opts)
            .with_store(store, "fake")
            .tune(&mut app2, Box::new(NelderMead::default()));
        // Nothing re-ran: no short runs, no restarts, zero tuning time, and
        // the campaign lands on the bit-identical result.
        assert_eq!(app2.runs, 0, "warm campaign re-ran the application");
        assert_eq!(warm.tuning_time, 0.0);
        assert_eq!(warm.store_hits, warm.result.evaluations + 1);
        assert_eq!(cold.result.evaluations, warm.result.evaluations);
        assert_eq!(
            cold.result.best_cost.to_bits(),
            warm.result.best_cost.to_bits()
        );
        assert_eq!(cold.default_cost.to_bits(), warm.default_cost.to_bits());
        assert!(warm
            .result
            .history
            .evaluations()
            .iter()
            .all(|e| e.cached && e.cumulative_time == 0.0));
    }

    #[test]
    fn report_row_matches_outcome() {
        let mut app = FakeApp { runs: 0 };
        let tuner = OfflineTuner::new(SessionOptions {
            max_evaluations: 15,
            seed: 14,
            ..Default::default()
        });
        let out = tuner.tune(&mut app, Box::new(NelderMead::default()));
        let row = out.report("fake");
        assert_eq!(row.tuned_cost, out.result.best_cost);
        assert_eq!(row.iterations, out.result.evaluations);
        assert!((row.improvement_pct() - out.improvement_pct()).abs() < 1e-12);
    }
}

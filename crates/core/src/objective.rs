//! Composite objective functions.
//!
//! §VII of the paper: "The tradeoff between accuracy and performance
//! improvement is an important issue in performance tuning. […] If these
//! tradeoffs can be quantified, other metrics such as fidelity and
//! scheduling policy can also be specified and integrated into the
//! objective function so the system can automate this tradeoff."
//!
//! [`TradeoffObjective`] implements exactly that: a time measure combined
//! with a quantified fidelity loss, so tuning stops at the resolution the
//! user is willing to pay for instead of racing to the coarsest allowed
//! grid.

use crate::space::Configuration;

/// Anything that scores a configuration (lower is better).
pub trait Objective {
    /// Evaluate the configuration.
    fn evaluate(&mut self, cfg: &Configuration) -> f64;
}

impl<F: FnMut(&Configuration) -> f64> Objective for F {
    fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        self(cfg)
    }
}

/// Combine execution time with a fidelity penalty:
/// `score = time(cfg) · (1 + weight · loss(cfg))`.
///
/// `loss` should be `0.0` at full fidelity and grow as quality degrades
/// (e.g. `1.0` = "half the resolution I wanted"). `weight` expresses how
/// many *relative seconds* one unit of fidelity loss is worth: with
/// `weight = 0.5`, a configuration that halves fidelity must be at least
/// 33% faster to win.
pub struct TradeoffObjective<T, L> {
    time: T,
    loss: L,
    weight: f64,
}

impl<T, L> TradeoffObjective<T, L>
where
    T: FnMut(&Configuration) -> f64,
    L: FnMut(&Configuration) -> f64,
{
    /// Build a time/fidelity tradeoff objective.
    pub fn new(time: T, loss: L, weight: f64) -> Self {
        assert!(weight >= 0.0, "fidelity weight must be non-negative");
        TradeoffObjective { time, loss, weight }
    }

    /// The components of the last scoring, for reporting.
    pub fn score_parts(&mut self, cfg: &Configuration) -> (f64, f64, f64) {
        let t = (self.time)(cfg);
        let l = (self.loss)(cfg);
        (t, l, t * (1.0 + self.weight * l))
    }
}

impl<T, L> Objective for TradeoffObjective<T, L>
where
    T: FnMut(&Configuration) -> f64,
    L: FnMut(&Configuration) -> f64,
{
    fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        let t = (self.time)(cfg);
        let l = (self.loss)(cfg);
        t * (1.0 + self.weight * l)
    }
}

/// A hard validity wall: configurations failing `accept` score
/// `penalty × inner`, keeping the search away without making the landscape
/// discontinuous at infinity.
pub struct PenalizedObjective<O, A> {
    inner: O,
    accept: A,
    penalty: f64,
}

impl<O, A> PenalizedObjective<O, A>
where
    O: Objective,
    A: FnMut(&Configuration) -> bool,
{
    /// Wrap `inner`, multiplying by `penalty` whenever `accept` is false.
    pub fn new(inner: O, accept: A, penalty: f64) -> Self {
        assert!(penalty >= 1.0, "penalty must not reward invalid points");
        PenalizedObjective {
            inner,
            accept,
            penalty,
        }
    }
}

impl<O, A> Objective for PenalizedObjective<O, A>
where
    O: Objective,
    A: FnMut(&Configuration) -> bool,
{
    fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        let base = self.inner.evaluate(cfg);
        if (self.accept)(cfg) {
            base
        } else {
            base * self.penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    fn space() -> SearchSpace {
        SearchSpace::builder().int("res", 1, 16, 1).build().unwrap()
    }

    #[test]
    fn closures_are_objectives() {
        let mut f = |cfg: &Configuration| cfg.int("res").unwrap() as f64;
        let cfg = space().project(&[4.0]);
        assert_eq!(Objective::evaluate(&mut f, &cfg), 4.0);
    }

    #[test]
    fn zero_weight_ignores_fidelity() {
        let mut obj = TradeoffObjective::new(
            |cfg: &Configuration| 100.0 / cfg.int("res").unwrap() as f64,
            |cfg: &Configuration| (16 - cfg.int("res").unwrap()) as f64,
            0.0,
        );
        let coarse = space().project(&[1.0]);
        let fine = space().project(&[16.0]);
        assert!(obj.evaluate(&coarse) > obj.evaluate(&fine) * 15.0);
    }

    #[test]
    fn weighted_tradeoff_moves_the_optimum_inward() {
        // time ∝ res (finer = slower); loss grows sharply as the grid
        // coarsens (discretisation error ∝ (h/h₀)² = (16/res)²).
        let make = |weight| {
            TradeoffObjective::new(
                |cfg: &Configuration| cfg.int("res").unwrap() as f64,
                |cfg: &Configuration| (16.0 / cfg.int("res").unwrap() as f64).powi(2),
                weight,
            )
        };
        let best_res = |weight| {
            let s = space();
            let mut obj = make(weight);
            (1..=16)
                .min_by(|&a, &b| {
                    let ca = obj.evaluate(&s.project(&[a as f64]));
                    let cb = obj.evaluate(&s.project(&[b as f64]));
                    ca.partial_cmp(&cb).unwrap()
                })
                .unwrap()
        };
        // Pure time: coarsest wins. Heavier fidelity weight pushes the
        // optimum toward finer resolutions (analytic optimum 16·√w).
        assert_eq!(best_res(0.0), 1);
        assert_eq!(best_res(0.04), 3);
        assert_eq!(best_res(0.25), 8);
        assert!(best_res(1.0) >= 15);
    }

    #[test]
    fn score_parts_decompose() {
        let mut obj =
            TradeoffObjective::new(|_: &Configuration| 10.0, |_: &Configuration| 0.5, 1.0);
        let cfg = space().project(&[8.0]);
        let (t, l, s) = obj.score_parts(&cfg);
        assert_eq!((t, l), (10.0, 0.5));
        assert_eq!(s, 15.0);
        assert_eq!(obj.evaluate(&cfg), 15.0);
    }

    #[test]
    fn penalty_repels_invalid_points() {
        let inner = |cfg: &Configuration| cfg.int("res").unwrap() as f64;
        let mut obj = PenalizedObjective::new(inner, |cfg| cfg.int("res").unwrap() >= 4, 100.0);
        let bad = space().project(&[1.0]);
        let good = space().project(&[4.0]);
        assert!(obj.evaluate(&bad) > obj.evaluate(&good));
    }

    #[test]
    #[should_panic(expected = "penalty")]
    fn rewarding_penalty_is_rejected() {
        let inner = |_: &Configuration| 1.0;
        let _ = PenalizedObjective::new(inner, |_| true, 0.5);
    }
}

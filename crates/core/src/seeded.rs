//! Shared seeded-hash primitives: one SplitMix64 for the whole workspace.
//!
//! Two subsystems draw stateless pseudo-random numbers from `(seed, index)`
//! pairs: retry jitter ([`crate::retry::RetryPolicy`]) and fault schedules
//! (`ah-clustersim`'s `FaultPlan`). Both used to carry private copies of the
//! same mixer; a silent drift between them would make "replay the fault
//! schedule of seed S" quietly wrong. This module is the single definition
//! both import.

/// SplitMix64: a tiny, high-quality stateless mixer — one
/// add/multiply-xor-shift round per draw, so deriving a value from
/// `(seed, index)` is O(1) with no sequential RNG stream to keep in sync
/// across workers.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)` (uses the top 53 bits, so every
/// representable value is an exact dyadic rational).
pub fn unit_f64(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values of the canonical SplitMix64 (Steele et al.),
        // pinned so the shared mixer can never drift: fault schedules and
        // jitter sequences recorded under a seed must stay replayable.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0xDEAD_BEEF), 0x4ADF_B90F_68C9_EB9B);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        for x in [0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            let u = unit_f64(splitmix64(x));
            assert!((0.0..1.0).contains(&u), "unit({x}) = {u}");
        }
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }
}

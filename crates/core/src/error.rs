//! Error types for the Active Harmony tuning system.
//!
//! Errors carry a coarse [`ErrorClass`]: *retryable* errors are transient
//! transport conditions (lost connection, timeout, server at capacity) that
//! a client may safely retry with backoff, while *fatal* errors are protocol
//! or state violations that retrying can never fix. The TCP client's
//! retry/backoff loop keys off [`HarmonyError::is_retryable`].

use std::fmt;

/// Whether an error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient: retrying with backoff may succeed (lost connection,
    /// timeout, server at capacity).
    Retryable,
    /// Permanent: a protocol or state violation; retrying cannot help.
    Fatal,
}

/// Errors produced by search-space construction, sessions, and the tuning
/// server.
#[derive(Debug, Clone, PartialEq)]
pub enum HarmonyError {
    /// A parameter was declared with an empty or inverted domain.
    InvalidParam {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of what is wrong.
        reason: String,
    },
    /// Two parameters in the same space share a name.
    DuplicateParam(String),
    /// A configuration referenced a parameter that the space does not define.
    UnknownParam(String),
    /// A value did not match the declared type/domain of its parameter.
    TypeMismatch {
        /// Name of the parameter.
        name: String,
        /// What was expected (e.g. `"int in [1, 8]"`).
        expected: String,
    },
    /// The search space has no parameters.
    EmptySpace,
    /// A client or session id was not known to the server.
    UnknownClient(u64),
    /// The server or a client channel was closed unexpectedly.
    Disconnected,
    /// An I/O deadline elapsed (connect, read, or write).
    Timeout(String),
    /// The server refused service because it is at capacity; retry later.
    ServerBusy(String),
    /// A tenant hit one of its configured quotas (sessions or in-flight
    /// trials). Transient like [`ServerBusy`](Self::ServerBusy) — capacity
    /// frees up as the tenant's other work completes — but typed, so
    /// callers can tell a per-tenant refusal from global backpressure.
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: String,
    },
    /// A filesystem or socket operation failed (WAL append, frame write).
    Io(String),
    /// A write-ahead log could not be replayed (truncated mid-record is
    /// tolerated; anything else is corruption).
    WalCorrupt(String),
    /// A performance store could not be opened (torn trailing record is
    /// tolerated; wrong kind/version or mid-file damage is corruption).
    StoreCorrupt(String),
    /// A configuration violates one of the space's constraints (e.g. a
    /// namelist parse produced a point outside the feasible region).
    ConstraintViolated(String),
    /// A protocol message arrived in a state where it is not legal
    /// (e.g. `Fetch` before the space was sealed).
    Protocol(String),
    /// A session was asked to continue after it already finished.
    SessionFinished,
}

impl HarmonyError {
    /// Coarse classification used by retry loops.
    pub fn class(&self) -> ErrorClass {
        match self {
            HarmonyError::Disconnected
            | HarmonyError::Timeout(_)
            | HarmonyError::ServerBusy(_)
            | HarmonyError::QuotaExceeded { .. } => ErrorClass::Retryable,
            _ => ErrorClass::Fatal,
        }
    }

    /// True if a client may retry the failed operation with backoff.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Retryable
    }
}

impl fmt::Display for HarmonyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarmonyError::InvalidParam { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            HarmonyError::DuplicateParam(name) => {
                write!(f, "duplicate parameter name `{name}`")
            }
            HarmonyError::UnknownParam(name) => write!(f, "unknown parameter `{name}`"),
            HarmonyError::TypeMismatch { name, expected } => {
                write!(f, "type mismatch for `{name}`: expected {expected}")
            }
            HarmonyError::EmptySpace => write!(f, "search space has no parameters"),
            HarmonyError::UnknownClient(id) => write!(f, "unknown client id {id}"),
            HarmonyError::Disconnected => write!(f, "harmony server/client channel disconnected"),
            HarmonyError::Timeout(what) => write!(f, "timed out: {what}"),
            HarmonyError::ServerBusy(msg) => write!(f, "server busy: {msg}"),
            HarmonyError::QuotaExceeded { tenant } => {
                write!(f, "tenant `{tenant}` is at its quota; retry with backoff")
            }
            HarmonyError::Io(msg) => write!(f, "i/o error: {msg}"),
            HarmonyError::WalCorrupt(msg) => write!(f, "write-ahead log corrupt: {msg}"),
            HarmonyError::StoreCorrupt(msg) => write!(f, "performance store corrupt: {msg}"),
            HarmonyError::ConstraintViolated(msg) => {
                write!(f, "configuration violates a space constraint: {msg}")
            }
            HarmonyError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            HarmonyError::SessionFinished => write!(f, "tuning session already finished"),
        }
    }
}

impl std::error::Error for HarmonyError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HarmonyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = HarmonyError::InvalidParam {
            name: "bx".into(),
            reason: "min > max".into(),
        };
        assert!(e.to_string().contains("bx"));
        assert!(e.to_string().contains("min > max"));
        assert!(HarmonyError::EmptySpace
            .to_string()
            .contains("no parameters"));
        assert!(HarmonyError::UnknownClient(7).to_string().contains('7'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&HarmonyError::Disconnected);
    }

    #[test]
    fn retryable_fatal_split() {
        assert!(HarmonyError::Disconnected.is_retryable());
        assert!(HarmonyError::Timeout("read".into()).is_retryable());
        assert!(HarmonyError::ServerBusy("capacity".into()).is_retryable());
        assert!(HarmonyError::QuotaExceeded {
            tenant: "team-a".into()
        }
        .is_retryable());
        assert!(!HarmonyError::Protocol("bad".into()).is_retryable());
        assert!(!HarmonyError::SessionFinished.is_retryable());
        assert!(!HarmonyError::Io("disk".into()).is_retryable());
        assert!(!HarmonyError::WalCorrupt("truncated header".into()).is_retryable());
        assert!(!HarmonyError::StoreCorrupt("bad kind".into()).is_retryable());
        assert_eq!(HarmonyError::Disconnected.class(), ErrorClass::Retryable);
        assert_eq!(HarmonyError::EmptySpace.class(), ErrorClass::Fatal);
    }
}

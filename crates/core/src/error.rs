//! Error types for the Active Harmony tuning system.

use std::fmt;

/// Errors produced by search-space construction, sessions, and the tuning
/// server.
#[derive(Debug, Clone, PartialEq)]
pub enum HarmonyError {
    /// A parameter was declared with an empty or inverted domain.
    InvalidParam {
        /// Name of the offending parameter.
        name: String,
        /// Human-readable description of what is wrong.
        reason: String,
    },
    /// Two parameters in the same space share a name.
    DuplicateParam(String),
    /// A configuration referenced a parameter that the space does not define.
    UnknownParam(String),
    /// A value did not match the declared type/domain of its parameter.
    TypeMismatch {
        /// Name of the parameter.
        name: String,
        /// What was expected (e.g. `"int in [1, 8]"`).
        expected: String,
    },
    /// The search space has no parameters.
    EmptySpace,
    /// A client or session id was not known to the server.
    UnknownClient(u64),
    /// The server or a client channel was closed unexpectedly.
    Disconnected,
    /// A protocol message arrived in a state where it is not legal
    /// (e.g. `Fetch` before the space was sealed).
    Protocol(String),
    /// A session was asked to continue after it already finished.
    SessionFinished,
}

impl fmt::Display for HarmonyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarmonyError::InvalidParam { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            HarmonyError::DuplicateParam(name) => {
                write!(f, "duplicate parameter name `{name}`")
            }
            HarmonyError::UnknownParam(name) => write!(f, "unknown parameter `{name}`"),
            HarmonyError::TypeMismatch { name, expected } => {
                write!(f, "type mismatch for `{name}`: expected {expected}")
            }
            HarmonyError::EmptySpace => write!(f, "search space has no parameters"),
            HarmonyError::UnknownClient(id) => write!(f, "unknown client id {id}"),
            HarmonyError::Disconnected => write!(f, "harmony server/client channel disconnected"),
            HarmonyError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            HarmonyError::SessionFinished => write!(f, "tuning session already finished"),
        }
    }
}

impl std::error::Error for HarmonyError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HarmonyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = HarmonyError::InvalidParam {
            name: "bx".into(),
            reason: "min > max".into(),
        };
        assert!(e.to_string().contains("bx"));
        assert!(e.to_string().contains("min > max"));
        assert!(HarmonyError::EmptySpace
            .to_string()
            .contains("no parameters"));
        assert!(HarmonyError::UnknownClient(7).to_string().contains('7'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&HarmonyError::Disconnected);
    }
}

//! Simulated annealing with a coupled, data-driven temperature schedule
//! (the PATSMA recipe adapted to Active Harmony's ask–tell loop).
//!
//! Classic annealing needs a hand-picked initial temperature, and on tuning
//! surfaces whose cost scale is unknown up front that choice dominates the
//! outcome. This implementation *couples* the schedule to the observed
//! surface: the first [`AnnealingOptions::warmup`] evaluations sample the
//! space and the initial temperature is estimated from the mean |Δcost|
//! actually observed, so acceptance probabilities start in a sane band
//! whether costs are microseconds or hours. Neighbor proposals are
//! lattice-aware — whole parameter steps, never sub-lattice dithers that
//! project back onto the incumbent — and the schedule reheats when the
//! search stagnates instead of freezing in a local basin.

use super::{AnnealingSnapshot, SearchStrategy, StrategySnapshot};
use crate::space::SearchSpace;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

/// Width of the sliding window the acceptance-rate diagnostic averages
/// over.
const ACCEPT_WINDOW: usize = 20;

/// Neighbor-draw attempts before giving up on feasibility/novelty and
/// falling back to a plain repaired candidate.
const DRAW_ATTEMPTS: usize = 24;

/// Tunable knobs of [`Annealing`] — the hyperparameter surface the
/// meta-tuner searches.
#[derive(Debug, Clone)]
pub struct AnnealingOptions {
    /// Multiplier on the adaptive initial temperature estimated from the
    /// warm-up cost deltas.
    pub t0_scale: f64,
    /// Geometric cooling factor applied after every annealed feedback
    /// (`0 < cooling < 1`).
    pub cooling: f64,
    /// Random warm-up samples used to estimate the cost scale before
    /// annealing starts.
    pub warmup: usize,
    /// Feedbacks without a new global best before the schedule reheats.
    pub reheat_after: usize,
    /// Fraction of the initial temperature a reheat restores.
    pub reheat_factor: f64,
    /// Maximum lattice steps a neighbor move takes in one dimension at
    /// full temperature (cools toward single steps as T drops).
    pub max_step: usize,
}

impl Default for AnnealingOptions {
    fn default() -> Self {
        AnnealingOptions {
            t0_scale: 1.0,
            cooling: 0.92,
            warmup: 6,
            reheat_after: 15,
            reheat_factor: 0.5,
            max_step: 4,
        }
    }
}

/// Coupled simulated annealing over the continuous embedding's lattice.
pub struct Annealing {
    opts: AnnealingOptions,
    /// Incumbent the walk perturbs: `(coords, cost)`.
    current: Option<(Vec<f64>, f64)>,
    /// Best point ever observed: `(coords, cost)`.
    best: Option<(Vec<f64>, f64)>,
    /// Costs observed during warm-up, in order.
    warmup_costs: Vec<f64>,
    /// Adaptive initial temperature (set once warm-up completes).
    t0: Option<f64>,
    temperature: f64,
    accepts: VecDeque<bool>,
    stagnant: usize,
    reheats: usize,
    evals: usize,
}

impl Default for Annealing {
    fn default() -> Self {
        Annealing::new(AnnealingOptions::default())
    }
}

impl Annealing {
    /// Create an annealer with the given schedule options.
    pub fn new(opts: AnnealingOptions) -> Self {
        Annealing {
            opts: AnnealingOptions {
                warmup: opts.warmup.max(2),
                max_step: opts.max_step.max(1),
                cooling: opts.cooling.clamp(0.5, 0.999),
                ..opts
            },
            current: None,
            best: None,
            warmup_costs: Vec::new(),
            t0: None,
            temperature: 0.0,
            accepts: VecDeque::new(),
            stagnant: 0,
            reheats: 0,
            evals: 0,
        }
    }

    /// Snap `coords` to its lattice point; `None` if the snapped
    /// configuration violates a constraint (never `None` on unconstrained
    /// spaces).
    fn snap(space: &SearchSpace, coords: &[f64]) -> Option<Vec<f64>> {
        let values: Vec<_> = space
            .params()
            .iter()
            .zip(coords)
            .map(|(param, &c)| param.project(c))
            .collect();
        let cfg = space.configuration(values).ok()?;
        if !space.constraints().is_empty() && !space.is_valid(&cfg) {
            return None;
        }
        space.embed(&cfg).ok()
    }

    /// A feasible lattice-snapped random sample (warm-up proposals).
    fn sample(space: &SearchSpace, rng: &mut StdRng) -> Vec<f64> {
        for _ in 0..DRAW_ATTEMPTS {
            let cand = space.sample_coords(rng);
            if let Some(snapped) = Self::snap(space, &cand) {
                return snapped;
            }
        }
        let mut cand = space.sample_coords(rng);
        space.repair(&mut cand);
        cand
    }

    /// One lattice-aware neighbor of the incumbent: perturb one (sometimes
    /// two) dimensions by whole lattice steps, more steps while hot.
    fn neighbor(&self, space: &SearchSpace, rng: &mut StdRng) -> Vec<f64> {
        let (incumbent, _) = self
            .current
            .as_ref()
            .expect("neighbor() requires an incumbent");
        let dims = incumbent.len();
        let heat = match self.t0 {
            Some(t0) if t0 > 0.0 => (self.temperature / t0).clamp(0.0, 1.0),
            _ => 1.0,
        };
        let max_step = 1 + ((self.opts.max_step - 1) as f64 * heat).round() as usize;
        for _ in 0..DRAW_ATTEMPTS {
            let mut cand = incumbent.clone();
            let move_two = dims > 1 && rng.gen_bool(0.25);
            let picks = if move_two { 2 } else { 1 };
            for _ in 0..picks {
                let d = rng.gen_range(0..dims);
                let p = &space.params()[d];
                let (lo, hi) = (p.embed_min(), p.embed_max());
                // Lattice pitch: whole parameter steps where the lattice is
                // finite, a 1/64th-range stride for real parameters.
                let pitch = match p.cardinality() {
                    Some(card) if card > 1 => (hi - lo) / (card - 1) as f64,
                    _ => (hi - lo) / 64.0,
                };
                if pitch <= 0.0 {
                    continue;
                }
                let steps = rng.gen_range(1..=max_step) as f64;
                let dir = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                cand[d] = (cand[d] + dir * steps * pitch).clamp(lo, hi);
            }
            if let Some(snapped) = Self::snap(space, &cand) {
                if &snapped != incumbent {
                    return snapped;
                }
            }
        }
        // Every draw landed back on the incumbent (or infeasible): jump.
        Self::sample(space, rng)
    }

    fn acceptance_rate(&self) -> f64 {
        if self.accepts.is_empty() {
            return 0.0;
        }
        self.accepts.iter().filter(|&&a| a).count() as f64 / self.accepts.len() as f64
    }

    fn record_accept(&mut self, accepted: bool) {
        if self.accepts.len() == ACCEPT_WINDOW {
            self.accepts.pop_front();
        }
        self.accepts.push_back(accepted);
    }

    /// Adaptive initial temperature: mean |Δcost| between consecutive
    /// warm-up samples, so `exp(-Δ/T0)` starts in a useful band for the
    /// surface's actual scale.
    fn couple_temperature(&mut self) {
        let deltas: Vec<f64> = self
            .warmup_costs
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .filter(|d| d.is_finite())
            .collect();
        let t0 = if deltas.is_empty() {
            1.0
        } else {
            (deltas.iter().sum::<f64>() / deltas.len() as f64).max(1e-12)
        };
        let t0 = t0 * self.opts.t0_scale.max(1e-6);
        self.t0 = Some(t0);
        self.temperature = t0;
    }
}

impl SearchStrategy for Annealing {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn init(&mut self, _space: &SearchSpace, _rng: &mut StdRng) {
        self.current = None;
        self.best = None;
        self.warmup_costs.clear();
        self.t0 = None;
        self.temperature = 0.0;
        self.accepts.clear();
        self.stagnant = 0;
        self.reheats = 0;
        self.evals = 0;
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>> {
        if self.evals < self.opts.warmup || self.current.is_none() {
            return Some(Self::sample(space, rng));
        }
        Some(self.neighbor(space, rng))
    }

    fn feedback(&mut self, coords: &[f64], cost: f64, _space: &SearchSpace, rng: &mut StdRng) {
        self.evals += 1;
        let improved_best = self.best.as_ref().is_none_or(|(_, b)| cost < *b);
        if improved_best {
            self.best = Some((coords.to_vec(), cost));
        }
        if self.t0.is_none() {
            // Warm-up: greedy incumbent, collect the cost scale.
            self.warmup_costs.push(cost);
            let better = self.current.as_ref().is_none_or(|(_, c)| cost < *c);
            if better {
                self.current = Some((coords.to_vec(), cost));
            }
            if self.evals >= self.opts.warmup {
                self.couple_temperature();
            }
            return;
        }
        // Annealing: Metropolis acceptance against the incumbent.
        let current_cost = self.current.as_ref().map_or(f64::INFINITY, |(_, c)| *c);
        let delta = cost - current_cost;
        let accepted = if delta <= 0.0 {
            true
        } else {
            let t = self.temperature.max(1e-300);
            rng.gen::<f64>() < (-delta / t).exp()
        };
        self.record_accept(accepted);
        if accepted {
            self.current = Some((coords.to_vec(), cost));
        }
        if improved_best {
            self.stagnant = 0;
        } else {
            self.stagnant += 1;
            if self.stagnant >= self.opts.reheat_after.max(1) {
                let t0 = self.t0.unwrap_or(1.0);
                self.temperature = self
                    .temperature
                    .max(t0 * self.opts.reheat_factor.clamp(0.0, 1.0));
                // Restart the walk from the best point seen.
                self.current = self.best.clone();
                self.reheats += 1;
                self.stagnant = 0;
            }
        }
        self.temperature *= self.opts.cooling;
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot {
            phase: if self.t0.is_none() {
                "warmup"
            } else {
                "anneal"
            },
            annealing: Some(AnnealingSnapshot {
                temperature: self.temperature,
                acceptance_rate: self.acceptance_rate(),
                reheats: self.reheats,
                best_cost: self.best.as_ref().map_or(f64::INFINITY, |(_, c)| *c),
            }),
            ..StrategySnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::MonotoneChain;
    use crate::strategy::test_util::drive;
    use rand::SeedableRng;

    fn bowl_space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 80, 1)
            .int("y", -30, 30, 1)
            .build()
            .unwrap()
    }

    fn bowl(cfg: &crate::space::Configuration) -> f64 {
        let x = cfg.int("x").unwrap() as f64;
        let y = cfg.int("y").unwrap() as f64;
        (x - 57.0).powi(2) + 2.0 * (y + 11.0).powi(2)
    }

    #[test]
    fn finds_the_bowl_minimum_region() {
        let space = bowl_space();
        let mut s = Annealing::default();
        let best = drive(&mut s, &space, 150, bowl);
        assert!(best < 30.0, "annealing stuck at {best}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let space = bowl_space();
        let run = || {
            let mut s = Annealing::default();
            let mut rng = StdRng::seed_from_u64(99);
            s.init(&space, &mut rng);
            let mut stream = Vec::new();
            for _ in 0..60 {
                let coords = s.propose(&space, &mut rng).unwrap();
                let cost = bowl(&space.project(&coords));
                stream.push((coords.clone(), cost.to_bits()));
                s.feedback(&coords, cost, &space, &mut rng);
            }
            stream
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn temperature_couples_to_cost_scale() {
        let space = bowl_space();
        let t0_at_scale = |scale: f64| {
            let mut s = Annealing::default();
            let mut rng = StdRng::seed_from_u64(7);
            s.init(&space, &mut rng);
            for _ in 0..10 {
                let coords = s.propose(&space, &mut rng).unwrap();
                let cost = scale * bowl(&space.project(&coords));
                s.feedback(&coords, cost, &space, &mut rng);
            }
            s.t0.expect("warm-up completed")
        };
        let small = t0_at_scale(1.0);
        let big = t0_at_scale(1000.0);
        assert!(big > 100.0 * small, "t0 not adaptive: {small} vs {big}");
    }

    #[test]
    fn reheats_on_stagnation() {
        let space = bowl_space();
        let mut s = Annealing::new(AnnealingOptions {
            reheat_after: 5,
            ..Default::default()
        });
        // A flat surface never improves the best, so the schedule must
        // reheat repeatedly.
        drive(&mut s, &space, 80, |_| 42.0);
        assert!(s.reheats >= 2, "only {} reheats", s.reheats);
    }

    #[test]
    fn constrained_proposals_are_feasible_lattice_points() {
        let space = SearchSpace::builder()
            .int("b1", 0, 9, 1)
            .int("b2", 0, 9, 1)
            .constraint(MonotoneChain::new(["b1", "b2"]))
            .build()
            .unwrap();
        let mut s = Annealing::default();
        let mut rng = StdRng::seed_from_u64(3);
        s.init(&space, &mut rng);
        for _ in 0..60 {
            let coords = s.propose(&space, &mut rng).unwrap();
            let values: Vec<_> = space
                .params()
                .iter()
                .zip(&coords)
                .map(|(p, &c)| p.project(c))
                .collect();
            let cfg = space.configuration(values).expect("snapped proposal");
            assert!(space.is_valid(&cfg), "infeasible proposal {coords:?}");
            let cost = bowl_like(&cfg);
            s.feedback(&coords, cost, &space, &mut rng);
        }
    }

    fn bowl_like(cfg: &crate::space::Configuration) -> f64 {
        let a = cfg.int("b1").unwrap() as f64;
        let b = cfg.int("b2").unwrap() as f64;
        (a - 3.0).powi(2) + (b - 7.0).powi(2)
    }

    #[test]
    fn snapshot_reports_schedule_state() {
        let space = bowl_space();
        let mut s = Annealing::default();
        assert_eq!(s.snapshot().phase, "warmup");
        drive(&mut s, &space, 40, bowl);
        let snap = s.snapshot();
        assert_eq!(snap.phase, "anneal");
        let a = snap.annealing.expect("annealing section");
        assert!(a.temperature > 0.0);
        assert!(a.best_cost.is_finite());
        assert!((0.0..=1.0).contains(&a.acceptance_rate));
    }
}

//! Uniform random sampling baseline.

use super::SearchStrategy;
use crate::space::SearchSpace;
use rand::rngs::StdRng;

/// Proposes independent uniform random points. The simplest baseline the
/// intelligent simplex search must beat (paper §VII: "Active Harmony searches
/// for a good configuration intelligently to reduce the tuning time").
#[derive(Debug, Default)]
pub struct RandomSearch {
    proposals: usize,
}

impl RandomSearch {
    /// Create a random-search baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many points have been proposed.
    pub fn proposals(&self) -> usize {
        self.proposals
    }
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn init(&mut self, _space: &SearchSpace, _rng: &mut StdRng) {
        self.proposals = 0;
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>> {
        self.proposals += 1;
        let mut p = space.sample_coords(rng);
        space.repair(&mut p);
        Some(p)
    }

    fn feedback(&mut self, _coords: &[f64], _cost: f64, _space: &SearchSpace, _rng: &mut StdRng) {}

    /// Feedback is a no-op and proposals draw only on the rng, so any number
    /// of proposals may be outstanding without changing the trajectory.
    fn can_propose_unanswered(&self, _unanswered: usize) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::drive;

    #[test]
    fn random_search_eventually_finds_good_points() {
        let space = SearchSpace::builder()
            .int("x", 0, 20, 1)
            .int("y", 0, 20, 1)
            .build()
            .unwrap();
        let mut rs = RandomSearch::new();
        let best = drive(&mut rs, &space, 400, |cfg| {
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            (x - 5.0).abs() + (y - 15.0).abs()
        });
        assert!(best <= 2.0, "best={best}");
        assert_eq!(rs.proposals(), 400);
    }

    #[test]
    fn proposals_respect_constraints() {
        use crate::constraint::MonotoneChain;
        let space = SearchSpace::builder()
            .int("a", 0, 100, 1)
            .int("b", 0, 100, 1)
            .constraint(MonotoneChain::new(["a", "b"]))
            .build()
            .unwrap();
        let mut rs = RandomSearch::new();
        let mut rng = rand::SeedableRng::seed_from_u64(9);
        rs.init(&space, &mut rng);
        for _ in 0..200 {
            let p = rs.propose(&space, &mut rng).unwrap();
            let cfg = space.project(&p);
            assert!(cfg.int("a").unwrap() <= cfg.int("b").unwrap());
        }
    }
}

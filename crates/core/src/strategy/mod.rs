//! Search strategies (the adaptation controller's tuning algorithms).
//!
//! The kernel of Active Harmony's adaptation controller is the Nelder–Mead
//! simplex method adapted to discrete spaces ([`NelderMead`]); the other
//! strategies are the baselines the paper compares against or uses to map
//! the search space ([`RandomSearch`], systematic sampling [`GridSearch`],
//! and [`Exhaustive`] enumeration).
//!
//! All strategies implement an *ask–tell* interface over continuous
//! coordinates: [`SearchStrategy::propose`] yields a candidate point in the
//! continuous embedding, the session projects it to the nearest valid
//! configuration and measures it, then [`SearchStrategy::feedback`] reports
//! the measured cost (of the projected point — the paper's "resulting values
//! from the nearest integer point" approximation).

mod annealing;
mod exhaustive;
mod genetic;
mod greedy;
mod grid;
mod nelder_mead;
pub mod pro;
mod random;
mod surrogate;

pub use annealing::{Annealing, AnnealingOptions};
pub use exhaustive::Exhaustive;
pub use genetic::{Genetic, GeneticOptions};
pub use greedy::{GreedyFrom, GreedyOneParam, GreedyOptions};
pub use grid::GridSearch;
pub use nelder_mead::{NelderMead, NelderMeadOptions, StartPoint};
pub use pro::{ParallelRankOrder, ProOptions};
pub use random::RandomSearch;
pub use surrogate::{Surrogate, SurrogateOptions};

use crate::space::SearchSpace;
use crate::telemetry::Telemetry;
use rand::rngs::StdRng;
use serde::Serialize;

/// Live snapshot of a simplex-family strategy's geometry and move history.
///
/// Exposed through [`SearchStrategy::snapshot`] for the observability
/// plane (`/status`, `repro watch`): the paper's authors steer their tuning
/// runs by watching how the simplex moves, and this is that signal, live.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SimplexSnapshot {
    /// Cost at every simplex vertex, sorted best-first. Vertices not yet
    /// evaluated are absent.
    pub vertex_costs: Vec<f64>,
    /// Convergence diagnostic: `(worst - best) / max(|best|, 1)` over the
    /// evaluated vertices — the relative cost spread the collapse test
    /// compares against its threshold. `0.0` until two vertices exist.
    pub spread: f64,
    /// Accepted reflection moves.
    pub reflections: usize,
    /// Accepted expansion moves.
    pub expansions: usize,
    /// Accepted contraction moves (outside and inside).
    pub contractions: usize,
    /// Shrink steps (every vertex pulled toward the best).
    pub shrinks: usize,
    /// Simplex restarts after a collapse.
    pub restarts: usize,
    /// Completed proposal rounds (PRO) — 0 for sequential simplexes.
    pub rounds: usize,
}

/// Live snapshot of a simulated-annealing strategy's schedule state.
#[derive(Debug, Clone, Default, Serialize)]
pub struct AnnealingSnapshot {
    /// Current temperature of the cooling schedule.
    pub temperature: f64,
    /// Fraction of recent proposals that were accepted as the new
    /// incumbent (Metropolis acceptances included).
    pub acceptance_rate: f64,
    /// Reheats triggered by stagnation.
    pub reheats: usize,
    /// Best cost observed so far (`+inf` before the first feedback).
    pub best_cost: f64,
}

/// Live snapshot of a genetic strategy's population state.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GeneticSnapshot {
    /// Completed generations.
    pub generation: usize,
    /// Best fitness (lowest cost) observed so far (`+inf` before the first
    /// feedback).
    pub best_fitness: f64,
    /// Population size (individuals per generation).
    pub population: usize,
    /// Synergy pairs currently mined from low-cost configurations.
    pub synergy_pairs: usize,
}

/// Live snapshot of a surrogate-assisted strategy's model state.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SurrogateSnapshot {
    /// Relative fit error of the last model fit (`inf` before any fit).
    pub fit_error: f64,
    /// Proposals that fell back to the inner strategy.
    pub fallbacks: usize,
    /// Proposals taken from the model's argmin.
    pub model_proposals: usize,
    /// Samples the model was last fitted on.
    pub samples: usize,
}

/// What a strategy reports about its internal search state.
///
/// The default ([`StrategySnapshot::default`]) is what non-simplex
/// strategies return: a phase label and nothing else.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StrategySnapshot {
    /// Human-readable label of the strategy's current internal phase
    /// (e.g. `"init"`, `"reflect"`, `"shrink"`, `"search"`).
    pub phase: &'static str,
    /// Simplex geometry and move counts, for simplex-family strategies.
    pub simplex: Option<SimplexSnapshot>,
    /// Annealing schedule state, for [`Annealing`].
    pub annealing: Option<AnnealingSnapshot>,
    /// Population state, for [`Genetic`].
    pub genetic: Option<GeneticSnapshot>,
    /// Model state, for [`Surrogate`].
    pub surrogate: Option<SurrogateSnapshot>,
}

/// Ask–tell interface implemented by every tuning algorithm.
pub trait SearchStrategy: Send {
    /// Short identifier for reports (e.g. `"nelder-mead"`).
    fn name(&self) -> &'static str;

    /// Called once before the first proposal.
    fn init(&mut self, space: &SearchSpace, rng: &mut StdRng);

    /// Next candidate point in the continuous embedding, or `None` when the
    /// strategy has exhausted its plan (finite strategies only).
    fn propose(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>>;

    /// Report the measured cost of the most recent proposal.
    ///
    /// `coords` are the continuous coordinates that were proposed (not the
    /// projected lattice point): the simplex keeps moving in continuous
    /// space while costs come from the nearest valid configuration.
    fn feedback(&mut self, coords: &[f64], cost: f64, space: &SearchSpace, rng: &mut StdRng);

    /// Whether the strategy considers itself converged (optional).
    fn converged(&self) -> bool {
        false
    }

    /// Whether the strategy can produce another proposal while `unanswered`
    /// earlier proposals still await [`feedback`](Self::feedback).
    ///
    /// This is the contract behind batched fetching: a strategy may only
    /// permit unanswered proposals if its trajectory is invariant to the
    /// batched interleaving — i.e. `propose, propose, feedback, feedback`
    /// (in proposal order) reaches exactly the same state as the serial
    /// `propose, feedback, propose, feedback`. That holds when proposals
    /// within the window draw on no feedback (PRO inside one round) or when
    /// feedback is a no-op (random/systematic sampling). Sequential
    /// strategies keep the default: one proposal at a time.
    fn can_propose_unanswered(&self, unanswered: usize) -> bool {
        unanswered == 0
    }

    /// Introspection snapshot of the strategy's internal state (optional).
    ///
    /// Must be cheap — the observability plane calls it while a session
    /// lock is held. The default reports a bare `"search"` phase with no
    /// simplex; simplex-family strategies override it.
    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot {
            phase: "search",
            ..StrategySnapshot::default()
        }
    }

    /// Attach a telemetry handle (optional). Strategies that record their
    /// own counters or latencies (e.g. [`Surrogate`]) override this;
    /// recording is a pure observer and never influences the trajectory.
    /// The session forwards its own handle here on
    /// [`set_telemetry`](crate::session::TuningSession::set_telemetry).
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}
}

/// Feasibility-aware lattice snap for candidate proposals, shared by the
/// strategies that move through continuous space ([`GreedyOneParam`],
/// [`NelderMead`]).
///
/// Unconstrained spaces keep the historical repair path (bit-identical
/// proposal streams). On constrained spaces, repair-then-snap can leave
/// the constraint surface (the snap undoes the repair) or collapse many
/// distinct candidates onto one boundary configuration; instead the
/// candidate is snapped to its lattice point and, if that violates a
/// constraint, the compiled space supplies the *nearest feasible* lattice
/// point (compiled lazily, once, on first need).
pub(crate) struct FeasibleSnapper {
    compiled: Option<crate::space_compile::CompiledSpace>,
}

/// Valid points scanned per nearest-feasible lookup (ample for the
/// constrained spaces the repro suite compiles; larger spaces fall back
/// to plain repair beyond the cap).
const SNAP_SCAN_CAP: u64 = 65_536;

impl FeasibleSnapper {
    pub(crate) fn new() -> Self {
        FeasibleSnapper { compiled: None }
    }

    /// Reset the cached compiled space (call from `init`).
    pub(crate) fn reset(&mut self) {
        self.compiled = None;
    }

    /// Snap `p` to a feasible lattice point (see type docs).
    pub(crate) fn snap(&mut self, space: &SearchSpace, mut p: Vec<f64>) -> Vec<f64> {
        if space.constraints().is_empty() {
            space.repair(&mut p);
            return p;
        }
        let values: Vec<_> = space
            .params()
            .iter()
            .zip(&p)
            .map(|(param, &c)| param.project(c))
            .collect();
        if let Ok(cfg) = space.configuration(values) {
            if space.is_valid(&cfg) {
                if let Ok(embedded) = space.embed(&cfg) {
                    return embedded;
                }
            }
        }
        if self.compiled.is_none() {
            self.compiled = crate::space_compile::CompiledSpace::compile(space).ok();
        }
        if let Some(snapped) = self
            .compiled
            .as_ref()
            .and_then(|cs| cs.snap_feasible(&p, SNAP_SCAN_CAP))
        {
            return snapped;
        }
        space.repair(&mut p);
        p
    }
}

/// Relative cost spread of a set of evaluated vertex costs:
/// `(worst - best) / max(|best|, 1)`, the convergence diagnostic simplex
/// collapse tests use. Non-finite costs are ignored; fewer than two finite
/// costs give `0.0`.
pub(crate) fn cost_spread(costs: &[f64]) -> f64 {
    let finite: Vec<f64> = costs.iter().copied().filter(|c| c.is_finite()).collect();
    if finite.len() < 2 {
        return 0.0;
    }
    let best = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (worst - best) / best.abs().max(1.0)
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::space::SearchSpace;
    use rand::SeedableRng;

    /// Drive a strategy against a closed-form objective; returns best cost.
    pub fn drive<F>(
        strategy: &mut dyn SearchStrategy,
        space: &SearchSpace,
        max_evals: usize,
        mut f: F,
    ) -> f64
    where
        F: FnMut(&crate::space::Configuration) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(12345);
        strategy.init(space, &mut rng);
        let mut best = f64::INFINITY;
        for _ in 0..max_evals {
            let Some(coords) = strategy.propose(space, &mut rng) else {
                break;
            };
            let cfg = space.project(&coords);
            let cost = f(&cfg);
            best = best.min(cost);
            strategy.feedback(&coords, cost, space, &mut rng);
        }
        best
    }
}

//! Search strategies (the adaptation controller's tuning algorithms).
//!
//! The kernel of Active Harmony's adaptation controller is the Nelder–Mead
//! simplex method adapted to discrete spaces ([`NelderMead`]); the other
//! strategies are the baselines the paper compares against or uses to map
//! the search space ([`RandomSearch`], systematic sampling [`GridSearch`],
//! and [`Exhaustive`] enumeration).
//!
//! All strategies implement an *ask–tell* interface over continuous
//! coordinates: [`SearchStrategy::propose`] yields a candidate point in the
//! continuous embedding, the session projects it to the nearest valid
//! configuration and measures it, then [`SearchStrategy::feedback`] reports
//! the measured cost (of the projected point — the paper's "resulting values
//! from the nearest integer point" approximation).

mod exhaustive;
mod greedy;
mod grid;
mod nelder_mead;
pub mod pro;
mod random;

pub use exhaustive::Exhaustive;
pub use greedy::{GreedyFrom, GreedyOneParam, GreedyOptions};
pub use grid::GridSearch;
pub use nelder_mead::{NelderMead, NelderMeadOptions, StartPoint};
pub use pro::{ParallelRankOrder, ProOptions};
pub use random::RandomSearch;

use crate::space::SearchSpace;
use rand::rngs::StdRng;

/// Ask–tell interface implemented by every tuning algorithm.
pub trait SearchStrategy: Send {
    /// Short identifier for reports (e.g. `"nelder-mead"`).
    fn name(&self) -> &'static str;

    /// Called once before the first proposal.
    fn init(&mut self, space: &SearchSpace, rng: &mut StdRng);

    /// Next candidate point in the continuous embedding, or `None` when the
    /// strategy has exhausted its plan (finite strategies only).
    fn propose(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>>;

    /// Report the measured cost of the most recent proposal.
    ///
    /// `coords` are the continuous coordinates that were proposed (not the
    /// projected lattice point): the simplex keeps moving in continuous
    /// space while costs come from the nearest valid configuration.
    fn feedback(&mut self, coords: &[f64], cost: f64, space: &SearchSpace, rng: &mut StdRng);

    /// Whether the strategy considers itself converged (optional).
    fn converged(&self) -> bool {
        false
    }

    /// Whether the strategy can produce another proposal while `unanswered`
    /// earlier proposals still await [`feedback`](Self::feedback).
    ///
    /// This is the contract behind batched fetching: a strategy may only
    /// permit unanswered proposals if its trajectory is invariant to the
    /// batched interleaving — i.e. `propose, propose, feedback, feedback`
    /// (in proposal order) reaches exactly the same state as the serial
    /// `propose, feedback, propose, feedback`. That holds when proposals
    /// within the window draw on no feedback (PRO inside one round) or when
    /// feedback is a no-op (random/systematic sampling). Sequential
    /// strategies keep the default: one proposal at a time.
    fn can_propose_unanswered(&self, unanswered: usize) -> bool {
        unanswered == 0
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::space::SearchSpace;
    use rand::SeedableRng;

    /// Drive a strategy against a closed-form objective; returns best cost.
    pub fn drive<F>(
        strategy: &mut dyn SearchStrategy,
        space: &SearchSpace,
        max_evals: usize,
        mut f: F,
    ) -> f64
    where
        F: FnMut(&crate::space::Configuration) -> f64,
    {
        let mut rng = StdRng::seed_from_u64(12345);
        strategy.init(space, &mut rng);
        let mut best = f64::INFINITY;
        for _ in 0..max_evals {
            let Some(coords) = strategy.propose(space, &mut rng) else {
                break;
            };
            let cfg = space.project(&coords);
            let cost = f(&cfg);
            best = best.min(cost);
            strategy.feedback(&coords, cost, space, &mut rng);
        }
        best
    }
}

//! Surrogate-assisted search: fit a cheap model to the evaluations already
//! paid for, and spend real evaluations on the model's argmin.
//!
//! The model is a separable quadratic `c(x) ≈ w0 + Σᵢ aᵢxᵢ + bᵢxᵢ²` over
//! per-dimension-normalized embedding coordinates, fitted by ridge-
//! regularized least squares via the normal equations — no external linear
//! algebra, just Gaussian elimination on a `(2d+1)²` system. Runtime-cost
//! surfaces in the paper's applications are bowl-shaped in most dimensions,
//! which is exactly what this model captures with a handful of samples.
//!
//! Every proposal decides up front whether it trusts the model:
//! - enough samples **and** the fit's relative error is below threshold →
//!   propose the model's argmin over compiled-space candidates not yet
//!   measured;
//! - otherwise → fall back to the inner strategy (Nelder–Mead by default)
//!   and count the fallback.
//!
//! Feedback for a model proposal never reaches the inner strategy — the
//! inner simplex only ever hears answers to its own questions, so its
//! invariants (one outstanding proposal) hold unchanged.

use super::{SearchStrategy, StrategySnapshot, SurrogateSnapshot};
use crate::space::SearchSpace;
use crate::space_compile::CompiledSpace;
use crate::telemetry::{Counter, Latency, Telemetry};
use rand::rngs::StdRng;
use std::collections::HashSet;
use std::time::Instant;

/// Random lattice candidates mixed into the argmin scan once enumeration
/// hits the candidate cap (so huge spaces still get global coverage).
const EXTRA_RANDOM_CANDIDATES: usize = 512;

/// Tunable knobs of [`Surrogate`] — the hyperparameter surface the
/// meta-tuner searches.
#[derive(Debug, Clone)]
pub struct SurrogateOptions {
    /// Samples required before the first fit; `0` means the automatic
    /// floor `2·dims + 3` (one sample per coefficient plus slack).
    pub min_samples: usize,
    /// Fresh samples between refits.
    pub refit_every: usize,
    /// Relative RMS fit error above which the model is distrusted and the
    /// proposal falls back to the inner strategy.
    pub fit_threshold: f64,
    /// Compiled-space points scanned per argmin pass (enumeration order;
    /// random candidates supplement the scan when the space is larger).
    pub candidate_cap: u64,
    /// Ridge regularization added to the normal equations' diagonal.
    pub ridge: f64,
}

impl Default for SurrogateOptions {
    fn default() -> Self {
        SurrogateOptions {
            min_samples: 0,
            refit_every: 4,
            fit_threshold: 0.25,
            candidate_cap: 65_536,
            ridge: 1e-6,
        }
    }
}

/// Fitted separable quadratic: `w[0] + Σ w[1+i]·xᵢ + w[1+d+i]·xᵢ²` over
/// normalized coordinates.
struct Model {
    weights: Vec<f64>,
    /// Relative RMS error on the training samples.
    rel_error: f64,
}

/// Which source produced the outstanding proposal.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Source {
    Model,
    Inner,
}

/// Surrogate-assisted proposer wrapping an inner [`SearchStrategy`].
pub struct Surrogate {
    opts: SurrogateOptions,
    inner: Box<dyn SearchStrategy>,
    compiled: Option<CompiledSpace>,
    /// Measured `(coords, cost)` pairs the model trains on.
    samples: Vec<(Vec<f64>, f64)>,
    /// Cache keys of every configuration measured or proposed.
    seen: HashSet<Vec<i64>>,
    model: Option<Model>,
    fitted_at: usize,
    last_source: Source,
    fallbacks: usize,
    model_proposals: usize,
    telemetry: Telemetry,
}

impl Default for Surrogate {
    fn default() -> Self {
        Surrogate::new(SurrogateOptions::default())
    }
}

impl Surrogate {
    /// Surrogate over the default inner strategy (Nelder–Mead).
    pub fn new(opts: SurrogateOptions) -> Self {
        Surrogate::with_inner(opts, Box::new(super::NelderMead::default()))
    }

    /// Surrogate over an explicit inner strategy.
    pub fn with_inner(opts: SurrogateOptions, inner: Box<dyn SearchStrategy>) -> Self {
        Surrogate {
            opts,
            inner,
            compiled: None,
            samples: Vec::new(),
            seen: HashSet::new(),
            model: None,
            fitted_at: 0,
            last_source: Source::Inner,
            fallbacks: 0,
            model_proposals: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Pre-seed the sample set with prior measurements (e.g. performance
    /// store records) so the first fit happens sooner.
    pub fn with_prior_samples(mut self, samples: Vec<(Vec<f64>, f64)>) -> Self {
        self.samples = samples;
        self
    }

    fn min_samples(&self, dims: usize) -> usize {
        let auto = 2 * dims + 3;
        self.opts.min_samples.max(auto)
    }

    /// Per-dimension normalization to [0, 1] for conditioning.
    fn normalize(space: &SearchSpace, coords: &[f64]) -> Vec<f64> {
        space
            .params()
            .iter()
            .zip(coords)
            .map(|(p, &c)| {
                let (lo, hi) = (p.embed_min(), p.embed_max());
                if hi > lo {
                    (c - lo) / (hi - lo)
                } else {
                    0.0
                }
            })
            .collect()
    }

    fn features(xn: &[f64]) -> Vec<f64> {
        let mut f = Vec::with_capacity(2 * xn.len() + 1);
        f.push(1.0);
        f.extend(xn.iter().copied());
        f.extend(xn.iter().map(|v| v * v));
        f
    }

    fn predict(model: &Model, xn: &[f64]) -> f64 {
        Self::features(xn)
            .iter()
            .zip(&model.weights)
            .map(|(f, w)| f * w)
            .sum()
    }

    /// Fit the quadratic by normal equations + Gaussian elimination.
    fn fit(&self, space: &SearchSpace) -> Option<Model> {
        let dims = space.params().len();
        let m = 2 * dims + 1;
        let rows: Vec<(Vec<f64>, f64)> = self
            .samples
            .iter()
            .filter(|(_, c)| c.is_finite())
            .map(|(x, c)| (Self::features(&Self::normalize(space, x)), *c))
            .collect();
        if rows.len() < m + 1 {
            return None;
        }
        // AᵀA + ridge·I and Aᵀy.
        let mut ata = vec![vec![0.0f64; m]; m];
        let mut aty = vec![0.0f64; m];
        for (f, y) in &rows {
            for i in 0..m {
                aty[i] += f[i] * y;
                for j in 0..m {
                    ata[i][j] += f[i] * f[j];
                }
            }
        }
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += self.opts.ridge.max(0.0);
        }
        let weights = solve(ata, aty)?;
        let model = Model {
            weights,
            rel_error: 0.0,
        };
        // Relative RMS error over the training set, scaled by the cost
        // spread so the threshold is unitless.
        let costs: Vec<f64> = rows.iter().map(|(_, y)| *y).collect();
        let lo = costs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let scale = (hi - lo).max(1e-12);
        let mse: f64 = rows
            .iter()
            .map(|(f, y)| {
                let pred: f64 = f.iter().zip(&model.weights).map(|(a, w)| a * w).sum();
                (pred - y).powi(2)
            })
            .sum::<f64>()
            / rows.len() as f64;
        Some(Model {
            rel_error: mse.sqrt() / scale,
            ..model
        })
    }

    fn maybe_refit(&mut self, space: &SearchSpace) {
        let dims = space.params().len();
        if self.samples.len() < self.min_samples(dims) {
            return;
        }
        let due = self.model.is_none()
            || self.samples.len() >= self.fitted_at + self.opts.refit_every.max(1);
        if !due {
            return;
        }
        let start = Instant::now();
        self.model = self.fit(space);
        self.telemetry
            .observe(Latency::SurrogateFit, start.elapsed());
        self.fitted_at = self.samples.len();
    }

    /// The model's argmin over not-yet-measured lattice candidates:
    /// compiled-space enumeration up to the cap, topped up with random
    /// lattice samples when the space is larger than the cap.
    fn argmin(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>> {
        if self.compiled.is_none() {
            self.compiled = CompiledSpace::compile(space).ok();
        }
        let model = self.model.as_ref()?;
        let cs = self.compiled.as_ref()?;
        let start = Instant::now();
        let mut best: Option<(f64, Vec<i64>, Vec<f64>)> = None;
        let mut consider = |key: Vec<i64>, coords: Vec<f64>| {
            if self.seen.contains(&key) {
                return;
            }
            let pred = Self::predict(model, &Self::normalize(space, &coords));
            if best.as_ref().is_none_or(|(b, ..)| pred < *b) {
                best = Some((pred, key, coords));
            }
        };
        let mut cursor = cs.start();
        let mut scanned = 0u64;
        while scanned < self.opts.candidate_cap && cs.next_point(&mut cursor) {
            scanned += 1;
            let cfg = cs.configuration(cursor.indices());
            let coords = cs.coords(cursor.indices());
            consider(cfg.cache_key(), coords);
        }
        if scanned == self.opts.candidate_cap {
            // Space larger than the scan: supplement with random lattice
            // candidates so the argmin isn't confined to one corner.
            for _ in 0..EXTRA_RANDOM_CANDIDATES {
                let cand = space.sample_coords(rng);
                let values: Vec<_> = space
                    .params()
                    .iter()
                    .zip(&cand)
                    .map(|(p, &c)| p.project(c))
                    .collect();
                let Ok(cfg) = space.configuration(values) else {
                    continue;
                };
                if !space.constraints().is_empty() && !space.is_valid(&cfg) {
                    continue;
                }
                let Ok(coords) = space.embed(&cfg) else {
                    continue;
                };
                consider(cfg.cache_key(), coords);
            }
        }
        self.telemetry
            .observe(Latency::SurrogatePredict, start.elapsed());
        let (_, key, coords) = best?;
        self.seen.insert(key);
        Some(coords)
    }

    fn note_seen(&mut self, space: &SearchSpace, coords: &[f64]) {
        self.seen.insert(space.project(coords).cache_key());
    }
}

impl SearchStrategy for Surrogate {
    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn init(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.inner.init(space, rng);
        self.compiled = None;
        self.seen.clear();
        self.model = None;
        self.fitted_at = 0;
        self.last_source = Source::Inner;
        self.fallbacks = 0;
        self.model_proposals = 0;
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>> {
        self.maybe_refit(space);
        let trusted = self
            .model
            .as_ref()
            .is_some_and(|m| m.rel_error <= self.opts.fit_threshold);
        if trusted {
            if let Some(coords) = self.argmin(space, rng) {
                self.last_source = Source::Model;
                self.model_proposals += 1;
                return Some(coords);
            }
        }
        // Fallback: the inner strategy asks its own question. Only count a
        // fallback once the model had enough samples to be consulted.
        if self.samples.len() >= self.min_samples(space.params().len()) {
            self.fallbacks += 1;
            self.telemetry.inc(Counter::SurrogateFallbacks);
        }
        let coords = self.inner.propose(space, rng)?;
        self.last_source = Source::Inner;
        Some(coords)
    }

    fn feedback(&mut self, coords: &[f64], cost: f64, space: &SearchSpace, rng: &mut StdRng) {
        self.note_seen(space, coords);
        self.samples.push((coords.to_vec(), cost));
        if self.last_source == Source::Inner {
            self.inner.feedback(coords, cost, space, rng);
        }
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot {
            phase: if self.model.is_some() {
                "model"
            } else {
                "collect"
            },
            surrogate: Some(SurrogateSnapshot {
                fit_error: self.model.as_ref().map_or(f64::INFINITY, |m| m.rel_error),
                fallbacks: self.fallbacks,
                model_proposals: self.model_proposals,
                samples: self.fitted_at,
            }),
            ..StrategySnapshot::default()
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.inner.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }
}

/// Solve `A·x = b` by Gaussian elimination with partial pivoting; `None`
/// when the system is numerically singular.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            let (upper, lower) = a.split_at_mut(row);
            for (t, p) in lower[0][col..].iter_mut().zip(&upper[col][col..]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::drive;
    use rand::SeedableRng;

    fn bowl_space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 80, 1)
            .int("y", -30, 30, 1)
            .build()
            .unwrap()
    }

    fn bowl(cfg: &crate::space::Configuration) -> f64 {
        let x = cfg.int("x").unwrap() as f64;
        let y = cfg.int("y").unwrap() as f64;
        3.0 + (x - 57.0).powi(2) * 0.1 + (y + 11.0).powi(2) * 0.2
    }

    #[test]
    fn solver_inverts_a_known_system() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solver_rejects_singular_systems() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn nails_a_quadratic_bowl_quickly() {
        let space = bowl_space();
        let mut s = Surrogate::default();
        let best = drive(&mut s, &space, 30, bowl);
        assert!(best < 3.5, "surrogate best {best}");
        assert!(
            s.model_proposals >= 1,
            "model never trusted ({} fallbacks)",
            s.fallbacks
        );
    }

    #[test]
    fn falls_back_on_an_adversarial_surface() {
        let space = bowl_space();
        let mut s = Surrogate::new(SurrogateOptions {
            fit_threshold: 0.05,
            ..Default::default()
        });
        // Checkerboard: no quadratic fits this within 5%, so the inner
        // strategy keeps the wheel.
        drive(&mut s, &space, 40, |cfg| {
            let x = cfg.int("x").unwrap();
            let y = cfg.int("y").unwrap();
            ((x + y) % 2) as f64 * 100.0 + (x as f64 - 40.0).abs()
        });
        assert!(s.fallbacks > 0, "no fallbacks on an unfittable surface");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let space = bowl_space();
        let run = || {
            let mut s = Surrogate::default();
            let mut rng = StdRng::seed_from_u64(31);
            s.init(&space, &mut rng);
            let mut stream = Vec::new();
            for _ in 0..40 {
                let Some(coords) = s.propose(&space, &mut rng) else {
                    break;
                };
                let cost = bowl(&space.project(&coords));
                stream.push((coords.clone(), cost.to_bits()));
                s.feedback(&coords, cost, &space, &mut rng);
            }
            stream
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn model_proposals_never_repeat_a_measured_point() {
        let space = bowl_space();
        let mut s = Surrogate::default();
        let mut rng = StdRng::seed_from_u64(17);
        s.init(&space, &mut rng);
        let mut keys = std::collections::HashSet::new();
        for _ in 0..40 {
            let coords = s.propose(&space, &mut rng).unwrap();
            let key = space.project(&coords).cache_key();
            if s.last_source == Source::Model {
                assert!(keys.insert(key), "model re-proposed a measured point");
            } else {
                keys.insert(key);
            }
            let cost = bowl(&space.project(&coords));
            s.feedback(&coords, cost, &space, &mut rng);
        }
    }

    #[test]
    fn prior_samples_accelerate_the_first_fit() {
        let space = bowl_space();
        let mut rng = StdRng::seed_from_u64(9);
        let priors: Vec<(Vec<f64>, f64)> = (0..12)
            .map(|_| {
                let c = space.sample_coords(&mut rng);
                let cost = bowl(&space.project(&c));
                (c, cost)
            })
            .collect();
        let mut s = Surrogate::default().with_prior_samples(priors);
        let mut rng2 = StdRng::seed_from_u64(10);
        s.init(&space, &mut rng2);
        let _ = s.propose(&space, &mut rng2).unwrap();
        assert!(s.model.is_some(), "prior samples should enable a fit");
    }

    #[test]
    fn snapshot_reports_model_state() {
        let space = bowl_space();
        let mut s = Surrogate::default();
        drive(&mut s, &space, 30, bowl);
        let snap = s.snapshot();
        assert_eq!(snap.phase, "model");
        let m = snap.surrogate.expect("surrogate section");
        assert!(m.fit_error.is_finite());
        assert!(m.samples > 0);
    }

    #[test]
    fn records_fallback_counter_on_telemetry() {
        let space = bowl_space();
        let telemetry = Telemetry::enabled();
        let mut s = Surrogate::new(SurrogateOptions {
            fit_threshold: 0.0,
            ..Default::default()
        });
        s.set_telemetry(telemetry.clone());
        drive(&mut s, &space, 30, |cfg| {
            let x = cfg.int("x").unwrap();
            ((x * 31) % 17) as f64
        });
        assert!(telemetry.counter(Counter::SurrogateFallbacks) > 0);
    }
}

//! Exhaustive enumeration of every lattice point.
//!
//! Only feasible for tiny spaces (the paper notes exhaustive exploration "can
//! take months of CPU time" for real applications) but invaluable as ground
//! truth in tests and small experiments such as Figure 2(b).

use super::SearchStrategy;
use crate::space::SearchSpace;
use rand::rngs::StdRng;

/// Enumerates all lattice points of a fully discrete space, in mixed-radix
/// order. Proposes nothing for spaces with continuous dimensions or more
/// points than `limit`.
#[derive(Debug)]
pub struct Exhaustive {
    limit: u64,
    counter: Vec<u64>,
    radix: Vec<u64>,
    done: bool,
    started: bool,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self::new(1_000_000)
    }
}

impl Exhaustive {
    /// Enumerate at most `limit` points (safety valve).
    pub fn new(limit: u64) -> Self {
        Exhaustive {
            limit,
            counter: Vec::new(),
            radix: Vec::new(),
            done: false,
            started: false,
        }
    }

    fn plan(&mut self, space: &SearchSpace) {
        self.started = true;
        match space.cardinality() {
            Some(n) if n <= self.limit => {
                self.radix = space
                    .params()
                    .iter()
                    .map(|p| p.cardinality().expect("checked discrete"))
                    .collect();
                self.counter = vec![0; space.dims()];
                self.done = false;
            }
            _ => {
                self.done = true;
            }
        }
    }

    fn advance(&mut self) {
        for d in (0..self.counter.len()).rev() {
            self.counter[d] += 1;
            if self.counter[d] < self.radix[d] {
                return;
            }
            self.counter[d] = 0;
        }
        self.done = true;
    }
}

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn init(&mut self, space: &SearchSpace, _rng: &mut StdRng) {
        self.plan(space);
    }

    fn propose(&mut self, space: &SearchSpace, _rng: &mut StdRng) -> Option<Vec<f64>> {
        if !self.started {
            self.plan(space);
        }
        if self.done {
            return None;
        }
        let p: Vec<f64> = self
            .counter
            .iter()
            .zip(space.params())
            .map(|(&i, param)| match param {
                crate::param::Param::Int { min, step, .. } => (min + i as i64 * step) as f64,
                crate::param::Param::Enum { .. } => i as f64,
                crate::param::Param::Real { .. } => unreachable!("plan rejects continuous dims"),
            })
            .collect();
        self.advance();
        Some(p)
    }

    fn feedback(&mut self, _coords: &[f64], _cost: f64, _space: &SearchSpace, _rng: &mut StdRng) {}

    fn converged(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn visits_every_point_exactly_once() {
        let s = SearchSpace::builder()
            .int("a", 2, 6, 2) // 2, 4, 6
            .enumeration("m", ["p", "q"])
            .build()
            .unwrap();
        let mut e = Exhaustive::default();
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        let mut seen = HashSet::new();
        while let Some(p) = e.propose(&s, &mut rng) {
            assert!(seen.insert(s.project(&p).cache_key()));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn refuses_oversized_spaces() {
        let s = SearchSpace::builder()
            .int("a", 0, 1_000_000, 1)
            .int("b", 0, 1_000_000, 1)
            .build()
            .unwrap();
        let mut e = Exhaustive::new(1000);
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        assert!(e.propose(&s, &mut rng).is_none());
    }

    #[test]
    fn refuses_continuous_spaces() {
        let s = SearchSpace::builder().real("r", 0.0, 1.0).build().unwrap();
        let mut e = Exhaustive::default();
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        assert!(e.propose(&s, &mut rng).is_none());
    }
}

//! Exhaustive enumeration of every *valid* lattice point.
//!
//! Only feasible for small spaces (the paper notes exhaustive exploration
//! "can take months of CPU time" for real applications) but invaluable as
//! ground truth in tests and small experiments such as Figure 2(b).
//!
//! The strategy enumerates the [`CompiledSpace`](crate::space_compile) —
//! constraint-infeasible points are skipped during the walk, never proposed
//! and repaired into duplicates of their neighbours. On a constrained space
//! the safety valve therefore keys off the *feasible* count: a space with a
//! huge raw product but few valid points is still enumerable.

use super::SearchStrategy;
use crate::space::SearchSpace;
use crate::space_compile::{CompiledSpace, FeasibleCount, PointCursor};
use rand::rngs::StdRng;

/// Enumerates all valid lattice points of a fully discrete space, in
/// mixed-radix (lexicographic) order, skipping constraint-infeasible
/// points. Proposes nothing for spaces with continuous dimensions or more
/// valid points than `limit`.
#[derive(Debug)]
pub struct Exhaustive {
    limit: u64,
    compiled: Option<CompiledSpace>,
    cursor: Option<PointCursor>,
    done: bool,
    started: bool,
}

impl Default for Exhaustive {
    fn default() -> Self {
        Self::new(1_000_000)
    }
}

impl Exhaustive {
    /// Enumerate at most `limit` valid points (safety valve).
    pub fn new(limit: u64) -> Self {
        Exhaustive {
            limit,
            compiled: None,
            cursor: None,
            done: false,
            started: false,
        }
    }

    fn plan(&mut self, space: &SearchSpace) {
        self.started = true;
        let Ok(cs) = CompiledSpace::compile(space) else {
            // Continuous dimensions: nothing to enumerate.
            self.done = true;
            return;
        };
        // Refuse unless the feasible count is provably within the limit.
        // The node budget bounds the counting walk itself, so a hostile
        // space (huge raw product, opaque constraints) answers quickly
        // with `AtLeast` instead of hanging here.
        let budget = self.limit.saturating_mul(64).saturating_add(4096);
        match cs.count_valid_bounded(self.limit, budget) {
            FeasibleCount::Exact(n) if n <= self.limit => {
                self.cursor = Some(cs.start());
                self.compiled = Some(cs);
                self.done = false;
            }
            _ => {
                self.done = true;
            }
        }
    }
}

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn init(&mut self, space: &SearchSpace, _rng: &mut StdRng) {
        self.plan(space);
    }

    fn propose(&mut self, space: &SearchSpace, _rng: &mut StdRng) -> Option<Vec<f64>> {
        if !self.started {
            self.plan(space);
        }
        if self.done {
            return None;
        }
        let (cs, cur) = (self.compiled.as_ref()?, self.cursor.as_mut()?);
        if cs.next_point(cur) {
            Some(cs.coords(cur.indices()))
        } else {
            self.done = true;
            None
        }
    }

    fn feedback(&mut self, _coords: &[f64], _cost: f64, _space: &SearchSpace, _rng: &mut StdRng) {}

    fn converged(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::MonotoneChain;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn visits_every_point_exactly_once() {
        let s = SearchSpace::builder()
            .int("a", 2, 6, 2) // 2, 4, 6
            .enumeration("m", ["p", "q"])
            .build()
            .unwrap();
        let mut e = Exhaustive::default();
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        let mut seen = HashSet::new();
        while let Some(p) = e.propose(&s, &mut rng) {
            assert!(seen.insert(s.project(&p).cache_key()));
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn constrained_space_yields_no_duplicates_and_only_valid_points() {
        let s = SearchSpace::builder()
            .int("b1", 0, 9, 1)
            .int("b2", 0, 9, 1)
            .int("b3", 0, 9, 1)
            .constraint(MonotoneChain::new(["b1", "b2", "b3"]))
            .build()
            .unwrap();
        let mut e = Exhaustive::default();
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        let mut seen = HashSet::new();
        while let Some(p) = e.propose(&s, &mut rng) {
            let cfg = s.project(&p);
            assert!(s.is_valid(&cfg), "{cfg}");
            assert!(seen.insert(cfg.cache_key()), "duplicate proposal {cfg}");
        }
        // C(10+2, 3) = 220 non-decreasing triples over 10 values.
        assert_eq!(seen.len(), 220);
    }

    #[test]
    fn limit_applies_to_the_feasible_count_not_the_raw_product() {
        // Raw product 10^4, only 715 valid points: enumerable under a
        // limit of 1000 now that infeasible points are skipped.
        let s = SearchSpace::builder()
            .int("b1", 0, 9, 1)
            .int("b2", 0, 9, 1)
            .int("b3", 0, 9, 1)
            .int("b4", 0, 9, 1)
            .constraint(MonotoneChain::new(["b1", "b2", "b3", "b4"]))
            .build()
            .unwrap();
        let mut e = Exhaustive::new(1000);
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        let mut n = 0;
        while e.propose(&s, &mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 715); // C(10+3, 4)
    }

    #[test]
    fn refuses_oversized_spaces() {
        let s = SearchSpace::builder()
            .int("a", 0, 1_000_000, 1)
            .int("b", 0, 1_000_000, 1)
            .build()
            .unwrap();
        let mut e = Exhaustive::new(1000);
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        assert!(e.propose(&s, &mut rng).is_none());
    }

    #[test]
    fn refuses_continuous_spaces() {
        let s = SearchSpace::builder().real("r", 0.0, 1.0).build().unwrap();
        let mut e = Exhaustive::default();
        let mut rng = StdRng::seed_from_u64(0);
        e.init(&s, &mut rng);
        assert!(e.propose(&s, &mut rng).is_none());
    }
}

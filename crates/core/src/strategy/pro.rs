//! Parallel Rank Ordering (PRO) — the parallel simplex search developed for
//! Active Harmony after the paper (Ţăpuş/Tiwari/Hollingsworth line of
//! work). Where Nelder–Mead moves one vertex per step, PRO reflects *every*
//! non-best vertex through the best point each round, so all candidate
//! evaluations of a round are independent and can run simultaneously — one
//! candidate per processor on a parallel machine.
//!
//! Round structure:
//! 1. **Reflect** all non-best vertices through the best.
//! 2. If the round produced a new global best, try **expansion** (double
//!    step); keep the pointwise better of reflected/expanded.
//! 3. Otherwise **contract** every vertex toward the best.
//!
//! Two drivers are provided: the [`SearchStrategy`] impl (serial ask–tell,
//! usable anywhere Nelder–Mead is) and [`tune_parallel`], which evaluates
//! each round's batch on crossbeam scoped threads.

use super::{cost_spread, SearchStrategy, SimplexSnapshot, StartPoint, StrategySnapshot};
use crate::history::{Evaluation, History};
use crate::session::TuningResult;
use crate::space::SearchSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// PRO knobs.
#[derive(Debug, Clone)]
pub struct ProOptions {
    /// Simplex size (number of vertices). Defaults to `dims + 1`, but PRO
    /// benefits from larger simplexes when more processors are available.
    pub size: Option<usize>,
    /// Reflection coefficient.
    pub alpha: f64,
    /// Expansion coefficient (> alpha).
    pub gamma: f64,
    /// Contraction coefficient in (0, 1).
    pub beta: f64,
    /// Fraction of each dimension's range used for the initial spread.
    pub init_scale: f64,
    /// Initial point policy.
    pub start: StartPoint,
}

impl Default for ProOptions {
    fn default() -> Self {
        ProOptions {
            size: None,
            alpha: 1.0,
            gamma: 2.0,
            beta: 0.5,
            init_scale: 0.25,
            start: StartPoint::Center,
        }
    }
}

#[derive(Debug, Clone)]
struct Vertex {
    coords: Vec<f64>,
    cost: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Init,
    Reflect,
    Expand,
    Contract,
}

/// The PRO search strategy.
pub struct ParallelRankOrder {
    opts: ProOptions,
    points: Vec<Vertex>,
    phase: Phase,
    /// Candidates of the current round (parallel-evaluable batch).
    batch: Vec<Vec<f64>>,
    /// Which vertex each batch entry replaces.
    batch_targets: Vec<usize>,
    /// Vertex positions at the start of the round (reflection/expansion
    /// both measure from these, not from intermediate updates).
    origin: Vec<Vertex>,
    /// Reflected candidates stashed while expansion runs.
    reflected: Vec<(Vec<f64>, f64)>,
    results: Vec<f64>,
    proposed: usize,
    answered: usize,
    rounds: usize,
    /// Consecutive contraction rounds that failed to move any vertex. The
    /// reflect→contract cycle is fully deterministic, so two failures in a
    /// row mean the simplex is in a limit cycle and needs a respread.
    stagnant: usize,
    // Per-kind round counts and respread count, surfaced by `snapshot()`.
    reflect_rounds: usize,
    expand_rounds: usize,
    contract_rounds: usize,
    respreads: usize,
}

impl Default for ParallelRankOrder {
    fn default() -> Self {
        Self::new(ProOptions::default())
    }
}

impl ParallelRankOrder {
    /// Create a PRO search with the given options.
    pub fn new(opts: ProOptions) -> Self {
        ParallelRankOrder {
            opts,
            points: Vec::new(),
            phase: Phase::Init,
            batch: Vec::new(),
            batch_targets: Vec::new(),
            origin: Vec::new(),
            reflected: Vec::new(),
            results: Vec::new(),
            proposed: 0,
            answered: 0,
            rounds: 0,
            stagnant: 0,
            reflect_rounds: 0,
            expand_rounds: 0,
            contract_rounds: 0,
            respreads: 0,
        }
    }

    /// Completed rounds (each a parallel batch on a real deployment).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The current batch of candidates, for parallel drivers.
    fn current_batch(&self) -> &[Vec<f64>] {
        &self.batch
    }

    fn best_index(&self) -> usize {
        self.points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
            .map(|(i, _)| i)
            .expect("nonempty simplex")
    }

    fn seed(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        let k = space.dims();
        // PRO is built for wide simplexes (one vertex per processor);
        // default to 2k so every round carries a useful parallel batch.
        let n = self.opts.size.unwrap_or_else(|| (2 * k).max(4)).max(2);
        let base: Vec<f64> = match &self.opts.start {
            StartPoint::Center => space
                .embed(&space.center())
                .expect("center embeds into its own space"),
            StartPoint::Random => space.sample_coords(rng),
            StartPoint::Coords(c) => c.clone(),
            StartPoint::Simplex(points) if !points.is_empty() => points[0].clone(),
            StartPoint::Simplex(_) => space.sample_coords(rng),
        };
        let mut batch: Vec<Vec<f64>> = Vec::with_capacity(n);
        if let StartPoint::Simplex(points) = &self.opts.start {
            batch.extend(points.iter().take(n).cloned());
        } else {
            batch.push(base.clone());
        }
        let mut keys: Vec<Vec<i64>> = batch
            .iter()
            .map(|p| {
                let mut q = p.clone();
                space.repair(&mut q);
                space.project(&q).cache_key()
            })
            .collect();
        while batch.len() < n {
            // Random spread around the base, retried for distinctness.
            let mut candidate = None;
            for _ in 0..32 {
                let mut p = base.clone();
                for (d, param) in space.params().iter().enumerate() {
                    let range = param.embed_max() - param.embed_min();
                    let amp = (range * self.opts.init_scale).max(1.0);
                    p[d] = (p[d] + rng.gen_range(-amp..=amp))
                        .clamp(param.embed_min(), param.embed_max());
                }
                space.repair(&mut p);
                let key = space.project(&p).cache_key();
                if !keys.contains(&key) {
                    candidate = Some((p, key));
                    break;
                }
            }
            match candidate {
                Some((p, key)) => {
                    batch.push(p);
                    keys.push(key);
                }
                None => batch.push(base.clone()),
            }
        }
        self.batch_targets = (0..batch.len()).collect();
        self.points = batch
            .iter()
            .map(|coords| Vertex {
                coords: coords.clone(),
                cost: f64::INFINITY,
            })
            .collect();
        self.origin = self.points.clone();
        self.batch = batch;
        self.results = Vec::new();
        self.proposed = 0;
        self.answered = 0;
        self.phase = Phase::Init;
    }

    fn combine(best: &[f64], other: &[f64], t: f64, space: &SearchSpace) -> Vec<f64> {
        // best + t * (best - other)
        let mut p: Vec<f64> = best
            .iter()
            .zip(other)
            .map(|(&b, &o)| b + t * (b - o))
            .collect();
        space.repair(&mut p);
        p
    }

    /// Build the next round's batch after all answers arrived.
    fn advance_round(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.rounds += 1;
        match self.phase {
            Phase::Init => {}
            Phase::Reflect => self.reflect_rounds += 1,
            Phase::Expand => self.expand_rounds += 1,
            Phase::Contract => self.contract_rounds += 1,
        }
        match self.phase {
            Phase::Init => {
                for (slot, &target) in self.batch_targets.iter().enumerate() {
                    self.points[target].cost = self.results[slot];
                }
                self.stagnant = 0;
                self.make_reflection(space, rng);
            }
            Phase::Reflect => {
                let best_cost = self.points[self.best_index()].cost;
                let round_best = self.results.iter().cloned().fold(f64::INFINITY, f64::min);
                if round_best < best_cost {
                    // Stash the reflected candidates and probe further out;
                    // expansion measures from the round origin, not from the
                    // reflected image.
                    self.reflected = self
                        .batch
                        .iter()
                        .cloned()
                        .zip(self.results.iter().cloned())
                        .collect();
                    self.make_expansion(space);
                } else {
                    self.make_contraction(space);
                }
            }
            Phase::Expand => {
                let reflected = std::mem::take(&mut self.reflected);
                for (slot, &target) in self.batch_targets.iter().enumerate() {
                    let (r_coords, r_cost) = &reflected[slot];
                    let e_cost = self.results[slot];
                    // Pointwise best of original / reflected / expanded.
                    let (coords, cost) = if e_cost < *r_cost {
                        (self.batch[slot].clone(), e_cost)
                    } else {
                        (r_coords.clone(), *r_cost)
                    };
                    if cost < self.points[target].cost {
                        self.points[target] = Vertex { coords, cost };
                    }
                }
                // Expansion only runs after a round improved on the global
                // best, so the simplex is making progress.
                self.stagnant = 0;
                self.make_reflection(space, rng);
            }
            Phase::Contract => {
                let mut moved = false;
                for (slot, &target) in self.batch_targets.iter().enumerate() {
                    if self.results[slot] < self.points[target].cost {
                        self.points[target] = Vertex {
                            coords: self.batch[slot].clone(),
                            cost: self.results[slot],
                        };
                        moved = true;
                    }
                }
                if moved {
                    self.stagnant = 0;
                } else {
                    self.stagnant += 1;
                }
                self.make_reflection(space, rng);
            }
        }
        self.results.clear();
        self.proposed = 0;
        self.answered = 0;
    }

    /// Candidates `best + t·(best − origin_i)` for every non-best vertex of
    /// the round origin.
    fn make_batch_through_best(&mut self, space: &SearchSpace, t: f64, phase: Phase) {
        let best = self.best_index();
        let best_coords = self.points[best].coords.clone();
        self.batch.clear();
        self.batch_targets.clear();
        for (i, v) in self.origin.iter().enumerate() {
            if i == best {
                continue;
            }
            self.batch
                .push(Self::combine(&best_coords, &v.coords, t, space));
            self.batch_targets.push(i);
        }
        self.phase = phase;
    }

    fn make_reflection(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        // New round: snapshot the origin.
        self.origin = self.points.clone();
        let alpha = self.opts.alpha;
        self.make_batch_through_best(space, alpha, Phase::Reflect);
        // Collapse guard: if every candidate projects onto the best point's
        // configuration, the simplex has converged in the lattice — respread
        // randomly around the best to keep exploring (as the paper's
        // discrete adaptation demands). The same respread also breaks the
        // deterministic reflect→contract limit cycle that arises when no
        // contraction improves its vertex two rounds running.
        let best_key = space
            .project(&self.points[self.best_index()].coords)
            .cache_key();
        let collapsed = self
            .batch
            .iter()
            .all(|p| space.project(p).cache_key() == best_key);
        if collapsed || self.stagnant >= 2 {
            self.stagnant = 0;
            self.respreads += 1;
            let best_coords = self.points[self.best_index()].coords.clone();
            for p in &mut self.batch {
                for (d, param) in space.params().iter().enumerate() {
                    let range = param.embed_max() - param.embed_min();
                    let amp = (range * self.opts.init_scale * 0.3).max(1.0);
                    p[d] = (best_coords[d] + rng.gen_range(-amp..=amp))
                        .clamp(param.embed_min(), param.embed_max());
                }
                space.repair(p);
            }
        }
    }

    fn make_expansion(&mut self, space: &SearchSpace) {
        let gamma = self.opts.gamma;
        self.make_batch_through_best(space, gamma, Phase::Expand);
    }

    fn make_contraction(&mut self, space: &SearchSpace) {
        // Contraction pulls vertices toward the best: best + β(v − best)
        // = best − β(best − v), i.e. t = −β in the shared helper.
        let beta = self.opts.beta;
        self.make_batch_through_best(space, -beta, Phase::Contract);
    }
}

impl SearchStrategy for ParallelRankOrder {
    fn name(&self) -> &'static str {
        "parallel-rank-order"
    }

    fn init(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.seed(space, rng);
    }

    fn propose(&mut self, _space: &SearchSpace, _rng: &mut StdRng) -> Option<Vec<f64>> {
        debug_assert!(
            self.proposed < self.batch.len(),
            "round must advance before over-proposing"
        );
        let p = self.batch[self.proposed].clone();
        self.proposed += 1;
        Some(p)
    }

    fn feedback(&mut self, _coords: &[f64], cost: f64, space: &SearchSpace, rng: &mut StdRng) {
        self.results.push(cost);
        self.answered += 1;
        if self.answered == self.batch.len() {
            self.advance_round(space, rng);
        }
    }

    /// A whole round is fixed before any of its results are used, so every
    /// not-yet-proposed candidate of the current round may go out while
    /// earlier ones are still being measured. Once the round is exhausted
    /// the simplex must wait for all answers to build the next batch.
    fn can_propose_unanswered(&self, _unanswered: usize) -> bool {
        self.proposed < self.batch.len()
    }

    fn snapshot(&self) -> StrategySnapshot {
        let mut vertex_costs: Vec<f64> = self
            .points
            .iter()
            .map(|v| v.cost)
            .filter(|c| c.is_finite())
            .collect();
        vertex_costs.sort_by(|a, b| a.total_cmp(b));
        let spread = cost_spread(&vertex_costs);
        StrategySnapshot {
            phase: match self.phase {
                Phase::Init => "init",
                Phase::Reflect => "reflect",
                Phase::Expand => "expand",
                Phase::Contract => "contract",
            },
            simplex: Some(SimplexSnapshot {
                vertex_costs,
                spread,
                reflections: self.reflect_rounds,
                expansions: self.expand_rounds,
                contractions: self.contract_rounds,
                shrinks: 0,
                restarts: self.respreads,
                rounds: self.rounds,
            }),
            ..StrategySnapshot::default()
        }
    }
}

/// Evaluate one PRO round's batch on crossbeam scoped threads and drive the
/// search to completion — the deployment mode PRO was designed for, where
/// each candidate runs on its own processor.
///
/// `objective` must be thread-safe; results are cached by configuration so
/// revisited lattice points are free.
pub fn tune_parallel<F>(
    space: &SearchSpace,
    objective: F,
    opts: ProOptions,
    max_rounds: usize,
    seed: u64,
) -> TuningResult
where
    F: Fn(&crate::space::Configuration) -> f64 + Sync,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pro = ParallelRankOrder::new(opts);
    pro.seed(space, &mut rng);
    let mut cache: HashMap<Vec<i64>, f64> = HashMap::new();
    let mut history = History::new();
    let mut iteration = 0;

    for _ in 0..max_rounds {
        let batch = pro.current_batch().to_vec();
        let configs: Vec<crate::space::Configuration> =
            batch.iter().map(|p| space.project(p)).collect();
        // Evaluate uncached configurations concurrently.
        let mut fresh_idx = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            if !cache.contains_key(&cfg.cache_key()) {
                fresh_idx.push(i);
            }
        }
        let fresh_costs: Vec<(usize, f64)> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = fresh_idx
                .iter()
                .map(|&i| {
                    let cfg = &configs[i];
                    let obj = &objective;
                    s.spawn(move |_| (i, obj(cfg)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("objective worker panicked"))
                .collect()
        })
        .expect("scoped evaluation");
        for &(i, cost) in &fresh_costs {
            cache.insert(configs[i].cache_key(), cost);
        }
        // Feed every result back in batch order.
        for (i, cfg) in configs.iter().enumerate() {
            let cost = cache[&cfg.cache_key()];
            let cached = !fresh_costs.iter().any(|&(j, _)| j == i);
            iteration += 1;
            history.push(Evaluation {
                iteration,
                config: cfg.clone(),
                cost,
                cached,
                cumulative_time: 0.0,
            });
            pro.feedback(&batch[i], cost, space, &mut rng);
        }
    }

    let best = history
        .best()
        .expect("at least one round evaluated")
        .clone();
    TuningResult {
        best_config: best.config,
        best_cost: best.cost,
        evaluations: history.runs(),
        stop_reason: crate::session::StopReason::MaxEvaluations,
        history,
        strategy: "parallel-rank-order",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::drive;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", -60, 60, 1)
            .int("y", -60, 60, 1)
            .build()
            .unwrap()
    }

    fn bowl(cfg: &crate::space::Configuration) -> f64 {
        let x = cfg.int("x").unwrap() as f64;
        let y = cfg.int("y").unwrap() as f64;
        (x - 11.0).powi(2) + (y + 29.0).powi(2)
    }

    #[test]
    fn pro_finds_the_bowl_minimum_serially() {
        let s = space();
        let mut pro = ParallelRankOrder::default();
        let best = drive(&mut pro, &s, 200, bowl);
        assert!(best <= 9.0, "best={best}");
        assert!(pro.rounds() > 3);
    }

    #[test]
    fn larger_simplexes_use_more_parallelism_per_round() {
        let s = space();
        let mut pro = ParallelRankOrder::new(ProOptions {
            size: Some(9),
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        pro.init(&s, &mut rng);
        assert_eq!(pro.current_batch().len(), 9); // init round
        let best = drive(&mut pro, &s, 250, bowl);
        assert!(best <= 9.0, "best={best}");
    }

    #[test]
    fn parallel_driver_matches_quality_of_serial() {
        let s = space();
        let result = tune_parallel(&s, bowl, ProOptions::default(), 60, 5);
        assert!(result.best_cost <= 9.0, "best={}", result.best_cost);
        assert_eq!(result.strategy, "parallel-rank-order");
        assert!(result.history.runs() > 10);
        // Cache must prevent duplicate evaluation of revisited points.
        let fresh = result.history.runs();
        let total = result.history.len();
        assert!(fresh <= total);
    }

    #[test]
    fn parallel_driver_is_deterministic() {
        let s = space();
        let a = tune_parallel(&s, bowl, ProOptions::default(), 30, 9);
        let b = tune_parallel(&s, bowl, ProOptions::default(), 30, 9);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.best_config, b.best_config);
    }

    #[test]
    fn contraction_rescues_a_bad_start() {
        // Start far away with a huge spread: the first reflections will
        // mostly fail, forcing contractions; the search must still converge.
        let s = space();
        let mut pro = ParallelRankOrder::new(ProOptions {
            start: StartPoint::Coords(vec![-60.0, 60.0]),
            init_scale: 0.9,
            ..Default::default()
        });
        let best = drive(&mut pro, &s, 250, bowl);
        assert!(best <= 25.0, "best={best}");
    }
}

//! Generation-batched genetic search with synergy-pair seeding.
//!
//! A plain GA treats parameters independently; compiler-flag and runtime
//! tuning surfaces are full of *pairwise* interactions (a block size that
//! only pays off with a matching prefetch depth). Following the CFSAT
//! idea, this strategy mines the evaluations it has already paid for (and
//! any prior-run records it was seeded with) for parameter-value **pairs
//! that co-occur in low-cost configurations**, and biases crossover toward
//! re-asserting those pairs in offspring.
//!
//! The GA is generation-batched exactly like [`super::pro`]: every
//! individual of a generation is proposed before any feedback is consumed,
//! so a sharded server can farm a whole generation out to parallel clients
//! and the trajectory stays bit-identical to serial execution.

use super::{GeneticSnapshot, SearchStrategy, StrategySnapshot};
use crate::space::SearchSpace;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Offspring-draw attempts before accepting a duplicate individual.
const BREED_ATTEMPTS: usize = 20;

/// Tunable knobs of [`Genetic`] — the hyperparameter surface the
/// meta-tuner searches.
#[derive(Debug, Clone)]
pub struct GeneticOptions {
    /// Individuals per generation.
    pub population: usize,
    /// Best evaluated individuals kept as parents without re-evaluation.
    pub elite: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation: f64,
    /// Probability an offspring has one mined synergy pair stamped onto
    /// it (no-op until pairs have been mined).
    pub synergy_bias: f64,
    /// Fraction of the evaluated archive treated as "low-cost" when
    /// mining synergy pairs.
    pub low_cost_frac: f64,
    /// Maximum synergy pairs kept per mining pass.
    pub max_synergy_pairs: usize,
}

impl Default for GeneticOptions {
    fn default() -> Self {
        GeneticOptions {
            population: 12,
            elite: 3,
            tournament: 3,
            mutation: 0.2,
            synergy_bias: 0.4,
            low_cost_frac: 0.3,
            max_synergy_pairs: 8,
        }
    }
}

/// One mined parameter-pair interaction: dimensions and the embedded
/// coordinate values that co-occur in low-cost configurations.
#[derive(Debug, Clone)]
struct SynergyPair {
    dim_a: usize,
    coord_a: f64,
    dim_b: usize,
    coord_b: f64,
}

/// Genetic algorithm with synergy-pair seeding.
pub struct Genetic {
    opts: GeneticOptions,
    /// Externally provided seed points (e.g. best configurations mined
    /// from a performance store) injected into generation 0.
    seeds: Vec<Vec<f64>>,
    /// Current generation's batch, proposed in order.
    batch: Vec<Vec<f64>>,
    proposed: usize,
    answered: usize,
    results: Vec<f64>,
    /// Every evaluated individual: `(lattice key, coords, cost)`.
    archive: Vec<(Vec<i64>, Vec<f64>, f64)>,
    /// Lattice keys ever batched (dedup across generations).
    seen: HashSet<Vec<i64>>,
    synergy: Vec<SynergyPair>,
    generation: usize,
    best: f64,
    started: bool,
}

impl Default for Genetic {
    fn default() -> Self {
        Genetic::new(GeneticOptions::default())
    }
}

impl Genetic {
    /// Create a GA with the given options.
    pub fn new(opts: GeneticOptions) -> Self {
        Genetic {
            opts: GeneticOptions {
                population: opts.population.max(4),
                elite: opts.elite.max(1),
                tournament: opts.tournament.max(2),
                ..opts
            },
            seeds: Vec::new(),
            batch: Vec::new(),
            proposed: 0,
            answered: 0,
            results: Vec::new(),
            archive: Vec::new(),
            seen: HashSet::new(),
            synergy: Vec::new(),
            generation: 0,
            best: f64::INFINITY,
            started: false,
        }
    }

    /// Inject prior-run points (e.g. low-cost configurations from a
    /// performance store) into the initial population.
    pub fn with_seeds(mut self, seeds: Vec<Vec<f64>>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Snap to a feasible lattice point; `None` when constrained-invalid.
    fn snap(space: &SearchSpace, coords: &[f64]) -> Option<(Vec<i64>, Vec<f64>)> {
        let values: Vec<_> = space
            .params()
            .iter()
            .zip(coords)
            .map(|(param, &c)| param.project(c))
            .collect();
        let cfg = space.configuration(values).ok()?;
        if !space.constraints().is_empty() && !space.is_valid(&cfg) {
            return None;
        }
        let key = cfg.cache_key();
        let embedded = space.embed(&cfg).ok()?;
        Some((key, embedded))
    }

    /// Push a candidate into `batch` if it snaps feasibly and is novel.
    fn admit(&mut self, space: &SearchSpace, coords: &[f64]) -> bool {
        let Some((key, snapped)) = Self::snap(space, coords) else {
            return false;
        };
        if !self.seen.insert(key) {
            return false;
        }
        self.batch.push(snapped);
        true
    }

    /// Random feasible individual (bounded retries, then force-admit a
    /// possibly-duplicate repaired sample so a tiny space can't stall the
    /// generation).
    fn admit_random(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        for _ in 0..BREED_ATTEMPTS {
            let cand = space.sample_coords(rng);
            if self.admit(space, &cand) {
                return;
            }
        }
        let mut cand = space.sample_coords(rng);
        space.repair(&mut cand);
        if let Some((_, snapped)) = Self::snap(space, &cand) {
            self.batch.push(snapped);
        } else {
            self.batch.push(cand);
        }
    }

    fn seed_generation(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.batch.clear();
        let seeds = std::mem::take(&mut self.seeds);
        for s in &seeds {
            if self.batch.len() < self.opts.population {
                self.admit(space, s);
            }
        }
        while self.batch.len() < self.opts.population {
            self.admit_random(space, rng);
        }
        self.proposed = 0;
        self.answered = 0;
        self.results = vec![f64::INFINITY; self.batch.len()];
    }

    /// Mine the archive for parameter-value pairs that co-occur in the
    /// low-cost tail. Values are bucketed into coarse per-dimension bins
    /// (distinct configurations never share an exact pair — the batch is
    /// deduplicated — but they do share *regions*); the representative
    /// coordinates kept for a pair come from its lowest-cost occurrence.
    /// Deterministic: candidates are sorted, never taken from
    /// hash-iteration order.
    fn mine_synergy(&mut self, space: &SearchSpace) {
        const BINS: f64 = 8.0;
        if self.archive.len() < 4 {
            return;
        }
        let mut ranked: Vec<&(Vec<i64>, Vec<f64>, f64)> = self.archive.iter().collect();
        ranked.sort_by(|a, b| a.2.total_cmp(&b.2));
        let take = ((ranked.len() as f64 * self.opts.low_cost_frac).ceil() as usize).max(2);
        let low = &ranked[..take.min(ranked.len())];
        let dims = low[0].1.len();
        let bin = |d: usize, c: f64| -> i64 {
            let p = &space.params()[d];
            let (lo, hi) = (p.embed_min(), p.embed_max());
            if hi <= lo {
                return 0;
            }
            (((c - lo) / (hi - lo) * BINS) as i64).min(BINS as i64 - 1)
        };
        // Count co-occurrences of (dim bin, dim bin) pairs in the tail;
        // `low` is ascending by cost, so the first occurrence recorded for
        // a pair is its best representative.
        type PairId = (usize, i64, usize, i64);
        let mut counts: Vec<(PairId, usize, f64, f64)> = Vec::new();
        for (_, coords, _) in low {
            for a in 0..dims {
                for b in (a + 1)..dims {
                    let id = (a, bin(a, coords[a]), b, bin(b, coords[b]));
                    match counts.iter_mut().find(|(k, ..)| *k == id) {
                        Some((_, n, ..)) => *n += 1,
                        None => counts.push((id, 1, coords[a], coords[b])),
                    }
                }
            }
        }
        counts.retain(|(_, n, ..)| *n >= 2);
        counts.sort_by(|(ka, na, ..), (kb, nb, ..)| nb.cmp(na).then(ka.cmp(kb)));
        self.synergy = counts
            .into_iter()
            .take(self.opts.max_synergy_pairs)
            .map(|((a, _, b, _), _, ca, cb)| SynergyPair {
                dim_a: a,
                coord_a: ca,
                dim_b: b,
                coord_b: cb,
            })
            .collect();
    }

    /// Tournament-select a parent index into `parents`.
    fn select(&self, parents: &[(Vec<f64>, f64)], rng: &mut StdRng) -> usize {
        let mut winner = rng.gen_range(0..parents.len());
        for _ in 1..self.opts.tournament {
            let challenger = rng.gen_range(0..parents.len());
            if parents[challenger].1 < parents[winner].1 {
                winner = challenger;
            }
        }
        winner
    }

    fn breed_generation(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        // Fold the finished batch into the archive.
        for (coords, &cost) in self.batch.iter().zip(&self.results) {
            if let Some((key, snapped)) = Self::snap(space, coords) {
                self.archive.push((key, snapped, cost));
            }
        }
        self.mine_synergy(space);
        // Parent pool: the best `population` individuals ever evaluated
        // (elites persist without re-evaluation).
        let mut pool: Vec<(Vec<f64>, f64)> = self
            .archive
            .iter()
            .map(|(_, c, cost)| (c.clone(), *cost))
            .collect();
        pool.sort_by(|a, b| a.1.total_cmp(&b.1));
        pool.truncate(self.opts.population.max(self.opts.elite));
        self.generation += 1;
        self.batch.clear();
        while self.batch.len() < self.opts.population {
            let mut admitted = false;
            for _ in 0..BREED_ATTEMPTS {
                let cand = self.offspring(&pool, space, rng);
                if self.admit(space, &cand) {
                    admitted = true;
                    break;
                }
            }
            if !admitted {
                self.admit_random(space, rng);
            }
        }
        self.proposed = 0;
        self.answered = 0;
        self.results = vec![f64::INFINITY; self.batch.len()];
    }

    /// One offspring: tournament parents, uniform crossover, synergy-pair
    /// stamping, lattice-step mutation.
    fn offspring(
        &self,
        parents: &[(Vec<f64>, f64)],
        space: &SearchSpace,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        if parents.is_empty() {
            return space.sample_coords(rng);
        }
        let pa = &parents[self.select(parents, rng)].0;
        let pb = &parents[self.select(parents, rng)].0;
        let mut child: Vec<f64> = pa
            .iter()
            .zip(pb)
            .map(|(&a, &b)| if rng.gen_bool(0.5) { a } else { b })
            .collect();
        if !self.synergy.is_empty() && rng.gen_bool(self.opts.synergy_bias.clamp(0.0, 1.0)) {
            let pair = &self.synergy[rng.gen_range(0..self.synergy.len())];
            if pair.dim_a < child.len() && pair.dim_b < child.len() {
                child[pair.dim_a] = pair.coord_a;
                child[pair.dim_b] = pair.coord_b;
            }
        }
        for (d, param) in space.params().iter().enumerate() {
            if rng.gen_bool(self.opts.mutation.clamp(0.0, 1.0)) {
                let (lo, hi) = (param.embed_min(), param.embed_max());
                child[d] = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            }
        }
        child
    }
}

impl SearchStrategy for Genetic {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn init(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.batch.clear();
        self.archive.clear();
        self.seen.clear();
        self.synergy.clear();
        self.generation = 0;
        self.best = f64::INFINITY;
        self.seed_generation(space, rng);
        self.started = true;
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>> {
        if !self.started {
            self.init(space, rng);
        }
        if self.proposed >= self.batch.len() {
            return None;
        }
        let coords = self.batch[self.proposed].clone();
        self.proposed += 1;
        Some(coords)
    }

    fn feedback(&mut self, _coords: &[f64], cost: f64, space: &SearchSpace, rng: &mut StdRng) {
        if self.answered >= self.results.len() {
            return;
        }
        self.results[self.answered] = cost;
        self.answered += 1;
        if cost < self.best {
            self.best = cost;
        }
        if self.answered == self.batch.len() {
            self.breed_generation(space, rng);
        }
    }

    /// A whole generation is fixed before any of its feedback arrives, so
    /// every still-unproposed individual of the current batch may be
    /// outstanding at once — the same contract as PRO rounds.
    fn can_propose_unanswered(&self, _unanswered: usize) -> bool {
        self.proposed < self.batch.len()
    }

    fn snapshot(&self) -> StrategySnapshot {
        StrategySnapshot {
            phase: if self.generation == 0 {
                "init"
            } else {
                "evolve"
            },
            genetic: Some(GeneticSnapshot {
                generation: self.generation,
                best_fitness: self.best,
                population: self.opts.population,
                synergy_pairs: self.synergy.len(),
            }),
            ..StrategySnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::MonotoneChain;
    use crate::strategy::test_util::drive;
    use rand::SeedableRng;

    fn space2d() -> SearchSpace {
        SearchSpace::builder()
            .int("x", 0, 63, 1)
            .int("y", 0, 63, 1)
            .build()
            .unwrap()
    }

    /// A surface with a strong pairwise interaction: good only when
    /// x and y land in the same narrow band together.
    fn synergy_surface(cfg: &crate::space::Configuration) -> f64 {
        let x = cfg.int("x").unwrap() as f64;
        let y = cfg.int("y").unwrap() as f64;
        (x - y).abs() * 10.0 + (x - 40.0).powi(2) * 0.1
    }

    #[test]
    fn improves_on_an_interacting_surface() {
        let space = space2d();
        let mut s = Genetic::default();
        let best = drive(&mut s, &space, 120, synergy_surface);
        assert!(best < 30.0, "GA stuck at {best}");
        assert!(s.generation >= 3);
    }

    #[test]
    fn mines_synergy_pairs_from_low_cost_tail() {
        let space = space2d();
        let mut s = Genetic::default();
        drive(&mut s, &space, 100, synergy_surface);
        assert!(
            !s.synergy.is_empty(),
            "no pairs mined after {} generations",
            s.generation
        );
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let space = space2d();
        let run = || {
            let mut s = Genetic::default();
            let mut rng = StdRng::seed_from_u64(4242);
            s.init(&space, &mut rng);
            let mut stream = Vec::new();
            for _ in 0..80 {
                let Some(coords) = s.propose(&space, &mut rng) else {
                    break;
                };
                let cost = synergy_surface(&space.project(&coords));
                stream.push((coords.clone(), cost.to_bits()));
                s.feedback(&coords, cost, &space, &mut rng);
            }
            stream
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_interleaving_matches_serial() {
        // Propose a whole generation before feeding back: the contract
        // behind `can_propose_unanswered`.
        let space = space2d();
        let serial = {
            let mut s = Genetic::default();
            let mut rng = StdRng::seed_from_u64(5);
            s.init(&space, &mut rng);
            let mut stream = Vec::new();
            for _ in 0..36 {
                let coords = s.propose(&space, &mut rng).unwrap();
                let cost = synergy_surface(&space.project(&coords));
                stream.push(coords.clone());
                s.feedback(&coords, cost, &space, &mut rng);
            }
            stream
        };
        let batched = {
            let mut s = Genetic::default();
            let mut rng = StdRng::seed_from_u64(5);
            s.init(&space, &mut rng);
            let mut stream = Vec::new();
            while stream.len() < 36 {
                let mut window = Vec::new();
                while s.can_propose_unanswered(window.len()) && stream.len() + window.len() < 36 {
                    let coords = s.propose(&space, &mut rng).unwrap();
                    window.push(coords);
                }
                for coords in window {
                    let cost = synergy_surface(&space.project(&coords));
                    stream.push(coords.clone());
                    s.feedback(&coords, cost, &space, &mut rng);
                }
            }
            stream
        };
        assert_eq!(serial, batched);
    }

    #[test]
    fn seeds_enter_generation_zero() {
        let space = space2d();
        let seed = vec![40.0, 40.0];
        let mut s = Genetic::default().with_seeds(vec![seed.clone()]);
        let mut rng = StdRng::seed_from_u64(1);
        s.init(&space, &mut rng);
        let first = s.propose(&space, &mut rng).unwrap();
        assert_eq!(first, seed);
    }

    #[test]
    fn constrained_batches_are_feasible() {
        let space = SearchSpace::builder()
            .int("b1", 0, 9, 1)
            .int("b2", 0, 9, 1)
            .constraint(MonotoneChain::new(["b1", "b2"]))
            .build()
            .unwrap();
        let mut s = Genetic::new(GeneticOptions {
            population: 6,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(8);
        s.init(&space, &mut rng);
        for _ in 0..30 {
            let coords = s.propose(&space, &mut rng).unwrap();
            let values: Vec<_> = space
                .params()
                .iter()
                .zip(&coords)
                .map(|(p, &c)| p.project(c))
                .collect();
            let cfg = space.configuration(values).unwrap();
            assert!(space.is_valid(&cfg), "infeasible individual {coords:?}");
            let c = cfg.int("b1").unwrap() as f64;
            s.feedback(&coords, c, &space, &mut rng);
        }
    }

    #[test]
    fn snapshot_reports_population_state() {
        let space = space2d();
        let mut s = Genetic::default();
        drive(&mut s, &space, 60, synergy_surface);
        let snap = s.snapshot();
        assert_eq!(snap.phase, "evolve");
        let g = snap.genetic.expect("genetic section");
        assert!(g.generation >= 1);
        assert!(g.best_fitness.is_finite());
        assert_eq!(g.population, 12);
    }
}

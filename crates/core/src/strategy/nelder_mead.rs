//! Nelder–Mead simplex search adapted to discrete spaces (paper §II).
//!
//! The simplex is a set of `k+1` points in the `k`-dimensional continuous
//! embedding of the search space. At each step the worst vertex is reflected
//! through the centroid of the opposite face; expansion, contraction, and
//! shrink steps follow the classic Nelder & Mead (1965) rules. Because the
//! real parameter spaces here are discrete, each candidate point is evaluated
//! at the *nearest valid lattice point* — the simplex itself keeps moving in
//! continuous space.
//!
//! Deviations from the textbook algorithm, both noted in the paper:
//! * evaluation values come from projected points, so distinct vertices can
//!   have identical costs — ties are broken by insertion order;
//! * a collapsed simplex (all vertices projecting to the same configuration)
//!   is re-seeded with fresh random vertices around the best point, since a
//!   discrete space offers no infinitesimal steps.

use super::{cost_spread, FeasibleSnapper, SearchStrategy, SimplexSnapshot, StrategySnapshot};
use crate::space::SearchSpace;
use rand::rngs::StdRng;
use rand::Rng;

/// Where the initial simplex comes from.
#[derive(Debug, Clone)]
pub enum StartPoint {
    /// Start from the centre of the space.
    Center,
    /// Start from a random point.
    Random,
    /// Start from the given continuous coordinates (e.g. the application's
    /// default configuration, or the best configurations from prior runs —
    /// the SC'04 "information from prior runs" technique).
    Coords(Vec<f64>),
    /// Seed the *entire* initial simplex from prior-run points (padded with
    /// perturbations of the first if fewer than `k+1` are given).
    Simplex(Vec<Vec<f64>>),
}

/// Tunable knobs of the simplex algorithm.
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Reflection coefficient α (> 0).
    pub alpha: f64,
    /// Expansion coefficient γ (> 1).
    pub gamma: f64,
    /// Contraction coefficient β (0 < β < 1).
    pub beta: f64,
    /// Shrink coefficient δ (0 < δ < 1).
    pub delta: f64,
    /// Fraction of each dimension's range used for the initial simplex edge.
    pub init_scale: f64,
    /// Initial point policy.
    pub start: StartPoint,
    /// Re-seed the simplex when it collapses onto one lattice point.
    pub restart_on_collapse: bool,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            alpha: 1.0,
            gamma: 2.0,
            beta: 0.5,
            delta: 0.5,
            init_scale: 0.25,
            start: StartPoint::Center,
            restart_on_collapse: true,
        }
    }
}

#[derive(Debug, Clone)]
struct Vertex {
    coords: Vec<f64>,
    cost: f64,
}

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    /// Evaluating initial vertices; index of the vertex awaiting a cost.
    InitEval(usize),
    /// Waiting for the cost of the reflected point.
    Reflect,
    /// Waiting for the cost of the expanded point.
    Expand,
    /// Waiting for the cost of an outside contraction.
    ContractOutside,
    /// Waiting for the cost of an inside contraction.
    ContractInside,
    /// Shrinking; index of the shrunken vertex awaiting a cost.
    Shrink(usize),
}

/// Discrete-space Nelder–Mead simplex search.
pub struct NelderMead {
    opts: NelderMeadOptions,
    vertices: Vec<Vertex>,
    phase: Phase,
    /// Cost of the reflected point, remembered across expand/contract.
    reflected: Option<Vertex>,
    pending: Option<Vec<f64>>,
    restarts: usize,
    // Accepted-move counts, surfaced by `snapshot()` for the observability
    // plane: which rules actually drive the search is the paper's own
    // debugging signal.
    reflections: usize,
    expansions: usize,
    contractions: usize,
    shrinks: usize,
    snapper: FeasibleSnapper,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self::new(NelderMeadOptions::default())
    }
}

impl NelderMead {
    /// Create a simplex search with the given options.
    pub fn new(opts: NelderMeadOptions) -> Self {
        NelderMead {
            opts,
            vertices: Vec::new(),
            phase: Phase::InitEval(0),
            reflected: None,
            pending: None,
            restarts: 0,
            reflections: 0,
            expansions: 0,
            contractions: 0,
            shrinks: 0,
            snapper: FeasibleSnapper::new(),
        }
    }

    /// Convenience: a simplex search seeded from explicit start coordinates.
    pub fn from_start(coords: Vec<f64>) -> Self {
        Self::new(NelderMeadOptions {
            start: StartPoint::Coords(coords),
            ..Default::default()
        })
    }

    /// Number of times the simplex collapsed and was re-seeded.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    fn seed_simplex(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        let k = space.dims();
        let base: Vec<f64> = match &self.opts.start {
            StartPoint::Center => space
                .embed(&space.center())
                .expect("center embeds into its own space"),
            StartPoint::Random => space.sample_coords(rng),
            StartPoint::Coords(c) => c.clone(),
            StartPoint::Simplex(points) if !points.is_empty() => points[0].clone(),
            StartPoint::Simplex(_) => space.sample_coords(rng),
        };
        let mut pts: Vec<Vec<f64>> = Vec::with_capacity(k + 1);
        if let StartPoint::Simplex(points) = &self.opts.start {
            pts.extend(points.iter().take(k + 1).cloned());
        } else {
            pts.push(base.clone());
        }
        for p in &mut pts {
            space.repair(p);
        }
        // Distinct projected lattice points guarantee a usable simplex even
        // when constraint repair (e.g. the sorting of a monotone chain)
        // would fold axis-aligned offsets onto each other.
        let mut keys: Vec<Vec<i64>> = pts.iter().map(|p| space.project(p).cache_key()).collect();
        while pts.len() < k + 1 {
            let i = pts.len() - 1; // dimension perturbed first
            let mut candidate = None;
            for attempt in 0..32 {
                let mut p = base.clone();
                if attempt < 2 {
                    // Axis-aligned offset; try the two directions in turn
                    // (alternating by vertex index so the initial simplex
                    // straddles the start point instead of sitting entirely
                    // on its positive side).
                    let dim = i % k;
                    let param = &space.params()[dim];
                    let range = param.embed_max() - param.embed_min();
                    let offset = (range * self.opts.init_scale).max(1.0);
                    let prefer_neg = (i % 2 == 1) != (attempt == 1);
                    let signed = if prefer_neg { -offset } else { offset };
                    p[dim] += if p[dim] + signed <= param.embed_max()
                        && p[dim] + signed >= param.embed_min()
                    {
                        signed
                    } else {
                        -signed
                    };
                } else {
                    // Repair folded the offset away: perturb every dimension
                    // randomly until the projection is distinct.
                    for (d, param) in space.params().iter().enumerate() {
                        let range = param.embed_max() - param.embed_min();
                        let amp = (range * self.opts.init_scale).max(1.0);
                        p[d] = (p[d] + rng.gen_range(-amp..=amp))
                            .clamp(param.embed_min(), param.embed_max());
                    }
                }
                space.repair(&mut p);
                let key = space.project(&p).cache_key();
                if !keys.contains(&key) {
                    candidate = Some((p, key));
                    break;
                }
            }
            match candidate {
                Some((p, key)) => {
                    pts.push(p);
                    keys.push(key);
                }
                None => {
                    // Space too small for a nondegenerate simplex; accept a
                    // duplicate rather than loop forever.
                    pts.push(base.clone());
                    keys.push(space.project(&base).cache_key());
                }
            }
        }
        self.vertices = pts
            .into_iter()
            .map(|coords| Vertex {
                coords,
                cost: f64::INFINITY,
            })
            .collect();
        self.phase = Phase::InitEval(0);
        self.reflected = None;
        self.pending = None;
    }

    fn order(&mut self) {
        // total_cmp, not partial_cmp-or-Equal: a NaN vertex must sort to
        // the worst end of the simplex (NaN > +inf in the total order), not
        // freeze wherever the unstable sort happened to leave it.
        self.vertices.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    }

    fn centroid_excluding_worst(&self) -> Vec<f64> {
        let k = self.vertices[0].coords.len();
        let n = self.vertices.len() - 1;
        let mut c = vec![0.0; k];
        for v in &self.vertices[..n] {
            for (ci, vi) in c.iter_mut().zip(&v.coords) {
                *ci += vi;
            }
        }
        for ci in &mut c {
            *ci /= n as f64;
        }
        c
    }

    fn combine(c: &[f64], w: &[f64], t: f64) -> Vec<f64> {
        // c + t*(c - w)
        c.iter()
            .zip(w)
            .map(|(&ci, &wi)| ci + t * (ci - wi))
            .collect()
    }

    /// True when every vertex projects onto the same lattice point.
    fn collapsed(&self, space: &SearchSpace) -> bool {
        if self.vertices.len() < 2 {
            return false;
        }
        let first = space.project(&self.vertices[0].coords).cache_key();
        self.vertices[1..]
            .iter()
            .all(|v| space.project(&v.coords).cache_key() == first)
    }

    fn restart_around_best(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.restarts += 1;
        let best = self.vertices[0].clone();
        let start = StartPoint::Coords(best.coords.clone());
        let old = std::mem::replace(&mut self.opts.start, start);
        // Randomise the edge scale a little so repeated restarts explore
        // different neighbourhoods.
        let old_scale = self.opts.init_scale;
        self.opts.init_scale = (old_scale * rng.gen_range(0.5..1.5)).clamp(0.05, 0.5);
        self.seed_simplex(space, rng);
        self.opts.start = old;
        self.opts.init_scale = old_scale;
        // Keep the known cost of the best vertex: it is vertex 0 by
        // construction (seed_simplex puts the start point first).
        self.vertices[0].cost = best.cost;
        self.phase = Phase::InitEval(1);
    }
}

impl SearchStrategy for NelderMead {
    fn name(&self) -> &'static str {
        "nelder-mead"
    }

    fn init(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.snapper.reset();
        self.seed_simplex(space, rng);
    }

    fn propose(&mut self, space: &SearchSpace, _rng: &mut StdRng) -> Option<Vec<f64>> {
        // The simplex moves (reflect/expand/contract) go through the
        // feasibility-aware snap: on constrained spaces a repaired point
        // re-snapped to the lattice can be invalid, or many distinct
        // reflections collapse onto one boundary configuration.
        let point = match &self.phase {
            Phase::InitEval(i) | Phase::Shrink(i) => self.vertices[*i].coords.clone(),
            Phase::Reflect => {
                let c = self.centroid_excluding_worst();
                let w = &self.vertices.last().expect("nonempty simplex").coords;
                let p = Self::combine(&c, w, self.opts.alpha);
                self.snapper.snap(space, p)
            }
            Phase::Expand => {
                let c = self.centroid_excluding_worst();
                let w = &self.vertices.last().expect("nonempty simplex").coords;
                let p = Self::combine(&c, w, self.opts.gamma);
                self.snapper.snap(space, p)
            }
            Phase::ContractOutside => {
                let c = self.centroid_excluding_worst();
                let w = &self.vertices.last().expect("nonempty simplex").coords;
                let p = Self::combine(&c, w, self.opts.beta);
                self.snapper.snap(space, p)
            }
            Phase::ContractInside => {
                let c = self.centroid_excluding_worst();
                let w = &self.vertices.last().expect("nonempty simplex").coords;
                let p = Self::combine(&c, w, -self.opts.beta);
                self.snapper.snap(space, p)
            }
        };
        self.pending = Some(point.clone());
        Some(point)
    }

    fn feedback(&mut self, coords: &[f64], cost: f64, space: &SearchSpace, rng: &mut StdRng) {
        debug_assert!(
            self.pending.as_deref() == Some(coords),
            "feedback must answer the outstanding proposal"
        );
        self.pending = None;
        match self.phase.clone() {
            Phase::InitEval(i) => {
                self.vertices[i].cost = cost;
                if i + 1 < self.vertices.len() {
                    self.phase = Phase::InitEval(i + 1);
                } else {
                    self.order();
                    self.phase = Phase::Reflect;
                }
            }
            Phase::Shrink(i) => {
                self.vertices[i].cost = cost;
                if i + 1 < self.vertices.len() {
                    self.phase = Phase::Shrink(i + 1);
                } else {
                    self.order();
                    self.phase = Phase::Reflect;
                }
            }
            Phase::Reflect => {
                let n = self.vertices.len();
                let best = self.vertices[0].cost;
                let second_worst = self.vertices[n - 2].cost;
                let worst = self.vertices[n - 1].cost;
                let reflected = Vertex {
                    coords: coords.to_vec(),
                    cost,
                };
                if cost < best {
                    self.reflected = Some(reflected);
                    self.phase = Phase::Expand;
                } else if cost < second_worst {
                    self.reflections += 1;
                    self.vertices[n - 1] = reflected;
                    self.order();
                    self.phase = Phase::Reflect;
                } else if cost < worst {
                    self.reflected = Some(reflected);
                    self.phase = Phase::ContractOutside;
                } else {
                    self.reflected = Some(reflected);
                    self.phase = Phase::ContractInside;
                }
            }
            Phase::Expand => {
                let n = self.vertices.len();
                let refl = self.reflected.take().expect("expand follows reflect");
                if cost < refl.cost {
                    self.expansions += 1;
                    self.vertices[n - 1] = Vertex {
                        coords: coords.to_vec(),
                        cost,
                    };
                } else {
                    self.reflections += 1;
                    self.vertices[n - 1] = refl;
                }
                self.order();
                self.phase = Phase::Reflect;
            }
            Phase::ContractOutside => {
                let n = self.vertices.len();
                let refl = self.reflected.take().expect("contract follows reflect");
                if cost <= refl.cost {
                    self.contractions += 1;
                    self.vertices[n - 1] = Vertex {
                        coords: coords.to_vec(),
                        cost,
                    };
                    self.order();
                    self.phase = Phase::Reflect;
                } else {
                    self.begin_shrink();
                }
            }
            Phase::ContractInside => {
                let n = self.vertices.len();
                let worst = self.vertices[n - 1].cost;
                self.reflected = None;
                if cost < worst {
                    self.contractions += 1;
                    self.vertices[n - 1] = Vertex {
                        coords: coords.to_vec(),
                        cost,
                    };
                    self.order();
                    self.phase = Phase::Reflect;
                } else {
                    self.begin_shrink();
                }
            }
        }
        if self.opts.restart_on_collapse
            && matches!(self.phase, Phase::Reflect)
            && self.collapsed(space)
        {
            self.restart_around_best(space, rng);
        }
    }

    fn converged(&self) -> bool {
        // The simplex itself never declares convergence: in a discrete space
        // the collapse-restart policy keeps exploring. Sessions bound effort
        // with their own stopping criteria.
        false
    }

    fn snapshot(&self) -> StrategySnapshot {
        let mut vertex_costs: Vec<f64> = self
            .vertices
            .iter()
            .map(|v| v.cost)
            .filter(|c| c.is_finite())
            .collect();
        vertex_costs.sort_by(|a, b| a.total_cmp(b));
        let spread = cost_spread(&vertex_costs);
        StrategySnapshot {
            phase: match self.phase {
                Phase::InitEval(_) => "init",
                Phase::Reflect => "reflect",
                Phase::Expand => "expand",
                Phase::ContractOutside => "contract_outside",
                Phase::ContractInside => "contract_inside",
                Phase::Shrink(_) => "shrink",
            },
            simplex: Some(SimplexSnapshot {
                vertex_costs,
                spread,
                reflections: self.reflections,
                expansions: self.expansions,
                contractions: self.contractions,
                shrinks: self.shrinks,
                restarts: self.restarts,
                rounds: 0,
            }),
            ..StrategySnapshot::default()
        }
    }
}

impl NelderMead {
    fn begin_shrink(&mut self) {
        self.shrinks += 1;
        let best = self.vertices[0].coords.clone();
        let delta = self.opts.delta;
        for v in self.vertices.iter_mut().skip(1) {
            for (vi, bi) in v.coords.iter_mut().zip(&best) {
                *vi = bi + delta * (*vi - bi);
            }
            v.cost = f64::INFINITY;
        }
        self.phase = Phase::Shrink(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::drive;

    fn quadratic_space() -> SearchSpace {
        SearchSpace::builder()
            .int("x", -50, 50, 1)
            .int("y", -50, 50, 1)
            .build()
            .unwrap()
    }

    #[test]
    fn finds_minimum_of_convex_quadratic() {
        let space = quadratic_space();
        let mut nm = NelderMead::default();
        let best = drive(&mut nm, &space, 150, |cfg| {
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            (x - 17.0).powi(2) + 2.0 * (y + 23.0).powi(2)
        });
        assert!(best <= 2.0, "best={best}");
    }

    #[test]
    fn handles_one_dimension() {
        let space = SearchSpace::builder().int("x", 0, 1000, 1).build().unwrap();
        let mut nm = NelderMead::default();
        let best = drive(&mut nm, &space, 80, |cfg| {
            (cfg.int("x").unwrap() as f64 - 777.0).abs()
        });
        assert!(best <= 2.0, "best={best}");
    }

    #[test]
    fn handles_categorical_dimensions() {
        let space = SearchSpace::builder()
            .enumeration("alg", ["slow", "medium", "fast", "fastest"])
            .int("buf", 1, 64, 1)
            .build()
            .unwrap();
        let mut nm = NelderMead::default();
        let best = drive(&mut nm, &space, 120, |cfg| {
            let alg_cost = match cfg.choice("alg").unwrap() {
                "slow" => 40.0,
                "medium" => 20.0,
                "fast" => 10.0,
                _ => 5.0,
            };
            alg_cost + (cfg.int("buf").unwrap() as f64 - 48.0).abs()
        });
        assert!(best <= 8.0, "best={best}");
    }

    #[test]
    fn restart_on_collapse_keeps_searching() {
        // A tiny space forces the simplex to collapse quickly; the restart
        // policy must keep proposing points instead of freezing.
        let space = SearchSpace::builder().int("x", 0, 3, 1).build().unwrap();
        let mut nm = NelderMead::default();
        let best = drive(&mut nm, &space, 60, |cfg| {
            [9.0, 3.0, 1.0, 4.0][cfg.int("x").unwrap() as usize]
        });
        assert_eq!(best, 1.0);
        assert!(nm.restarts() > 0, "expected at least one collapse restart");
    }

    #[test]
    fn prior_simplex_seed_is_used() {
        let space = quadratic_space();
        // Seed all three vertices near the optimum; the search should land
        // almost immediately.
        let seed = vec![vec![16.0, -22.0], vec![18.0, -24.0], vec![17.0, -21.0]];
        let mut nm = NelderMead::new(NelderMeadOptions {
            start: StartPoint::Simplex(seed),
            ..Default::default()
        });
        let best = drive(&mut nm, &space, 20, |cfg| {
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            (x - 17.0).powi(2) + 2.0 * (y + 23.0).powi(2)
        });
        assert!(best <= 2.0, "best={best}");
    }

    #[test]
    fn snapshot_reports_converging_simplex() {
        let space = quadratic_space();
        let mut nm = NelderMead::default();
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        nm.init(&space, &mut rng);
        let mut spreads = Vec::new();
        for _ in 0..120 {
            let coords = nm.propose(&space, &mut rng).unwrap();
            let cfg = space.project(&coords);
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            nm.feedback(
                &coords,
                (x - 9.0).powi(2) + (y - 4.0).powi(2),
                &space,
                &mut rng,
            );
            let snap = nm.snapshot();
            let simplex = snap.simplex.expect("nelder-mead exposes its simplex");
            spreads.push(simplex.spread);
            assert!(simplex.vertex_costs.windows(2).all(|w| w[0] <= w[1]));
        }
        let snap = nm.snapshot();
        let simplex = snap.simplex.unwrap();
        // Mid-restart only the carried-over best vertex has a cost, so
        // between 1 and k+1 vertices are visible at any instant.
        assert!((1..=3).contains(&simplex.vertex_costs.len()), "{simplex:?}");
        assert!(
            simplex.reflections + simplex.expansions + simplex.contractions + simplex.shrinks > 0,
            "{simplex:?}"
        );
        // The simplex converges: the spread collapses well below where the
        // early iterations started.
        let early = spreads[..10].iter().copied().fold(0.0_f64, f64::max);
        assert!(
            simplex.spread < early || simplex.spread == 0.0,
            "spread {} never fell below early max {early}",
            simplex.spread
        );
    }

    #[test]
    fn best_vertex_cost_never_increases() {
        let space = quadratic_space();
        let mut nm = NelderMead::default();
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        nm.init(&space, &mut rng);
        let mut best_seen = f64::INFINITY;
        for _ in 0..100 {
            let coords = nm.propose(&space, &mut rng).unwrap();
            let cfg = space.project(&coords);
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            let cost = x * x + y * y;
            nm.feedback(&coords, cost, &space, &mut rng);
            best_seen = best_seen.min(cost);
            let simplex_best = nm
                .vertices
                .iter()
                .map(|v| v.cost)
                .fold(f64::INFINITY, f64::min);
            assert!(
                simplex_best >= best_seen - 1e-12 || simplex_best.is_infinite(),
                "simplex lost track of the best point"
            );
        }
    }

    #[test]
    fn constrained_simplex_moves_snap_to_feasible_points() {
        // b1 <= b2 <= b3: reflections through the centroid routinely cross
        // the constraint surface. Repair-then-lattice-snap used to hand the
        // session points whose *snapped* configuration violated the chain
        // (the snap undoes the repair); the feasibility-aware snap consults
        // the compiled space instead.
        let space = SearchSpace::builder()
            .int("b1", 0, 11, 1)
            .int("b2", 0, 11, 1)
            .int("b3", 0, 11, 1)
            .constraint(crate::constraint::MonotoneChain::new(["b1", "b2", "b3"]))
            .build()
            .unwrap();
        let mut nm = NelderMead::default();
        let mut rng = rand::SeedableRng::seed_from_u64(11);
        nm.init(&space, &mut rng);
        let mut checked_moves = 0;
        for _ in 0..120 {
            let moving = !matches!(nm.phase, Phase::InitEval(_) | Phase::Shrink(_));
            let coords = nm.propose(&space, &mut rng).unwrap();
            if moving {
                // Simplex moves must land exactly on feasible lattice
                // points (init/shrink vertices stay continuous by design).
                let values: Vec<_> = space
                    .params()
                    .iter()
                    .zip(&coords)
                    .map(|(param, &c)| param.project(c))
                    .collect();
                let cfg = space.configuration(values).expect("snapped move");
                assert!(space.is_valid(&cfg), "infeasible simplex move {coords:?}");
                checked_moves += 1;
            }
            let cfg = space.project(&coords);
            let b1 = cfg.int("b1").unwrap() as f64;
            let b2 = cfg.int("b2").unwrap() as f64;
            let b3 = cfg.int("b3").unwrap() as f64;
            let cost = (b1 - 2.0).powi(2) + (b2 - 5.0).powi(2) + (b3 - 9.0).powi(2);
            nm.feedback(&coords, cost, &space, &mut rng);
        }
        assert!(checked_moves > 20, "only {checked_moves} moves exercised");
    }
}

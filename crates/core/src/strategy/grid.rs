//! Systematic sampling over the whole search space (paper §VI, Figure 6).
//!
//! "We also explore the whole search space using systematic sampling (i.e.,
//! using configurations that are evenly distributed in the whole search
//! space)." [`GridSearch`] picks `lᵢ` evenly spaced levels per dimension so
//! that `∏ lᵢ` approaches a target sample budget, and enumerates the
//! Cartesian product.

use super::SearchStrategy;
use crate::param::Param;
use crate::space::SearchSpace;
use rand::rngs::StdRng;
use std::collections::HashSet;

/// Evenly distributed systematic sampling with a sample budget.
///
/// On a constrained space, grid points that violate a constraint are
/// *skipped* (and points whose per-dimension lattice snap collides with an
/// already-proposed point are deduplicated) rather than repaired into
/// duplicate configurations; the number of proposals may therefore fall
/// short of [`planned_samples`](Self::planned_samples). Unconstrained
/// spaces keep the exact historical stream.
#[derive(Debug)]
pub struct GridSearch {
    target: usize,
    levels: Vec<Vec<f64>>,
    /// Mixed-radix counter over the levels.
    counter: Vec<usize>,
    /// Cache keys already proposed (constrained spaces only).
    proposed: HashSet<Vec<i64>>,
    done: bool,
    started: bool,
}

impl GridSearch {
    /// Sample approximately `target` evenly distributed configurations.
    pub fn new(target: usize) -> Self {
        GridSearch {
            target: target.max(1),
            levels: Vec::new(),
            counter: Vec::new(),
            proposed: HashSet::new(),
            done: false,
            started: false,
        }
    }

    /// The exact number of grid points that will be proposed (available
    /// after `init`).
    pub fn planned_samples(&self) -> usize {
        if self.levels.is_empty() {
            0
        } else {
            self.levels.iter().map(Vec::len).product()
        }
    }

    fn levels_for(param: &Param, per_dim: usize) -> Vec<f64> {
        let lo = param.embed_min();
        let hi = param.embed_max();
        let card = param.cardinality();
        // Never plan more levels than the dimension has lattice points.
        let n = match card {
            Some(c) => per_dim.min(c as usize),
            None => per_dim,
        }
        .max(1);
        if n == 1 {
            return vec![0.5 * (lo + hi)];
        }
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }

    fn plan(&mut self, space: &SearchSpace) {
        let k = space.dims();
        // Start with floor(target^(1/k)) levels per dimension and grow
        // greedily while under budget.
        let mut per_dim = (self.target as f64).powf(1.0 / k as f64).floor() as usize;
        per_dim = per_dim.max(1);
        self.levels = space
            .params()
            .iter()
            .map(|p| Self::levels_for(p, per_dim))
            .collect();
        // Greedy growth: add a level to the dimension with the fewest levels
        // while the total stays within the budget.
        loop {
            let total: usize = self.levels.iter().map(Vec::len).product();
            let mut best: Option<(usize, usize)> = None; // (levels, dim)
            for (d, p) in space.params().iter().enumerate() {
                let cur = self.levels[d].len();
                let cap = p.cardinality().map(|c| c as usize).unwrap_or(usize::MAX);
                if cur >= cap {
                    continue;
                }
                let grown = total / cur * (cur + 1);
                if grown <= self.target && best.map(|(l, _)| cur < l).unwrap_or(true) {
                    best = Some((cur, d));
                }
            }
            match best {
                Some((_, d)) => {
                    let n = self.levels[d].len() + 1;
                    self.levels[d] = Self::levels_for(&space.params()[d], n);
                }
                None => break,
            }
        }
        self.counter = vec![0; k];
        self.proposed.clear();
        self.done = false;
        self.started = true;
    }

    fn advance(&mut self) {
        for d in (0..self.counter.len()).rev() {
            self.counter[d] += 1;
            if self.counter[d] < self.levels[d].len() {
                return;
            }
            self.counter[d] = 0;
        }
        self.done = true;
    }
}

impl SearchStrategy for GridSearch {
    fn name(&self) -> &'static str {
        "systematic-sampling"
    }

    fn init(&mut self, space: &SearchSpace, _rng: &mut StdRng) {
        self.plan(space);
    }

    fn propose(&mut self, space: &SearchSpace, _rng: &mut StdRng) -> Option<Vec<f64>> {
        if !self.started {
            self.plan(space);
        }
        loop {
            if self.done {
                return None;
            }
            let mut p: Vec<f64> = self
                .counter
                .iter()
                .zip(&self.levels)
                .map(|(&i, lv)| lv[i])
                .collect();
            self.advance();
            if space.constraints().is_empty() {
                // Historical stream, bit-identical: repair is a no-op
                // without constraints, and every grid point is proposed.
                space.repair(&mut p);
                return Some(p);
            }
            // Constrained: snap each coordinate to its lattice *without*
            // constraint repair, then skip the point unless it is valid
            // and new — repairing would collapse many grid points onto
            // the same feasible configuration and inflate evaluation
            // counts with duplicates.
            let values: Vec<_> = space
                .params()
                .iter()
                .zip(&p)
                .map(|(param, &c)| param.project(c))
                .collect();
            let Ok(cfg) = space.configuration(values) else {
                continue;
            };
            if !space.is_valid(&cfg) || !self.proposed.insert(cfg.cache_key()) {
                continue;
            }
            return space.embed(&cfg).ok();
        }
    }

    fn feedback(&mut self, _coords: &[f64], _cost: f64, _space: &SearchSpace, _rng: &mut StdRng) {}

    fn converged(&self) -> bool {
        self.done
    }

    /// The sample plan is fixed up front and feedback is a no-op, so the
    /// whole remaining plan may be outstanding at once.
    fn can_propose_unanswered(&self, _unanswered: usize) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn space() -> SearchSpace {
        SearchSpace::builder()
            .int("a", 0, 9, 1)
            .int("b", 0, 9, 1)
            .build()
            .unwrap()
    }

    #[test]
    fn planned_samples_close_to_target() {
        let s = space();
        let mut g = GridSearch::new(36);
        let mut rng = StdRng::seed_from_u64(0);
        g.init(&s, &mut rng);
        let n = g.planned_samples();
        assert!((25..=36).contains(&n), "planned={n}");
    }

    #[test]
    fn enumerates_without_duplicates_and_terminates() {
        let s = space();
        let mut g = GridSearch::new(25);
        let mut rng = StdRng::seed_from_u64(0);
        g.init(&s, &mut rng);
        let mut seen = HashSet::new();
        let mut count = 0;
        while let Some(p) = g.propose(&s, &mut rng) {
            let cfg = s.project(&p);
            seen.insert(cfg.cache_key());
            count += 1;
            assert!(count <= 25, "grid overshot its budget");
        }
        assert_eq!(count, g.planned_samples());
        assert_eq!(seen.len(), count, "grid points projected onto duplicates");
        assert!(g.converged());
    }

    #[test]
    fn respects_small_cardinality_dimensions() {
        let s = SearchSpace::builder()
            .enumeration("mode", ["x", "y"]) // only 2 points
            .int("n", 0, 99, 1)
            .build()
            .unwrap();
        let mut g = GridSearch::new(1000);
        let mut rng = StdRng::seed_from_u64(0);
        g.init(&s, &mut rng);
        // 2 levels max on the enum; remaining budget goes to `n`.
        assert!(g.planned_samples() <= 1000);
        assert!(g.planned_samples() >= 2 * 100); // n fully expands to 100 levels
    }

    #[test]
    fn constrained_grid_skips_instead_of_repairing_into_duplicates() {
        let s = SearchSpace::builder()
            .int("b1", 0, 9, 1)
            .int("b2", 0, 9, 1)
            .constraint(crate::constraint::MonotoneChain::new(["b1", "b2"]))
            .build()
            .unwrap();
        let mut g = GridSearch::new(100);
        let mut rng = StdRng::seed_from_u64(0);
        g.init(&s, &mut rng);
        let mut seen = HashSet::new();
        while let Some(p) = g.propose(&s, &mut rng) {
            let cfg = s.project(&p);
            assert!(s.is_valid(&cfg), "{cfg}");
            assert!(seen.insert(cfg.cache_key()), "duplicate proposal {cfg}");
        }
        // The feasible half of the 10×10 grid (incl. the diagonal).
        assert_eq!(seen.len(), 55);
        assert!(g.converged());
    }

    #[test]
    fn single_point_budget_yields_center() {
        let s = space();
        let mut g = GridSearch::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        g.init(&s, &mut rng);
        let p = g.propose(&s, &mut rng).unwrap();
        let cfg = s.project(&p);
        assert_eq!(cfg.int("a"), Some(5));
        assert!(g.propose(&s, &mut rng).is_none());
    }
}

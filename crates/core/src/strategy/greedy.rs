//! Greedy one-parameter-at-a-time search (OAT).
//!
//! The classic manual-tuning procedure the paper's experts performed by
//! hand, and the shape Table I's trace suggests: hold everything fixed,
//! sweep one parameter's values, keep the best, move to the next parameter,
//! and cycle until a full round makes no progress. A strong baseline on
//! separable spaces (like POP's namelist) and a foil for the simplex on
//! coupled ones (like decomposition boundaries, where single-parameter
//! moves cannot cross the minimax plateaus).

use super::{FeasibleSnapper, SearchStrategy};
use crate::param::Param;
use crate::space::SearchSpace;
use rand::rngs::StdRng;

/// Options for [`GreedyOneParam`].
#[derive(Debug, Clone)]
pub struct GreedyOptions {
    /// Maximum lattice values probed per parameter per visit (larger
    /// integer ranges are subsampled evenly).
    pub max_probes_per_param: usize,
    /// Stop after this many consecutive full cycles without improvement.
    pub max_stale_cycles: usize,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_probes_per_param: 8,
            max_stale_cycles: 1,
        }
    }
}

/// Greedy coordinate sweep over the lattice.
pub struct GreedyOneParam {
    opts: GreedyOptions,
    /// Current best coordinates (the incumbent configuration).
    current: Vec<f64>,
    current_cost: f64,
    /// Dimension currently being swept.
    dim: usize,
    /// Values queued for the sweep of `dim`.
    probes: Vec<f64>,
    probe_idx: usize,
    improved_this_cycle: bool,
    stale_cycles: usize,
    done: bool,
    started: bool,
    snapper: FeasibleSnapper,
}

impl Default for GreedyOneParam {
    fn default() -> Self {
        Self::new(GreedyOptions::default())
    }
}

impl GreedyOneParam {
    /// Create a greedy sweep with the given options.
    pub fn new(opts: GreedyOptions) -> Self {
        GreedyOneParam {
            opts,
            current: Vec::new(),
            current_cost: f64::INFINITY,
            dim: 0,
            probes: Vec::new(),
            probe_idx: 0,
            improved_this_cycle: false,
            stale_cycles: 0,
            done: false,
            started: false,
            snapper: FeasibleSnapper::new(),
        }
    }

    fn probes_for(&self, param: &Param) -> Vec<f64> {
        let lo = param.embed_min();
        let hi = param.embed_max();
        let n = match param.cardinality() {
            Some(c) => (c as usize).min(self.opts.max_probes_per_param),
            None => self.opts.max_probes_per_param,
        }
        .max(1);
        if n == 1 {
            return vec![0.5 * (lo + hi)];
        }
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }

    fn start_dim(&mut self, space: &SearchSpace) {
        self.probes = self.probes_for(&space.params()[self.dim]);
        self.probe_idx = 0;
    }

    fn next_dim(&mut self, space: &SearchSpace) {
        self.dim += 1;
        if self.dim >= space.dims() {
            self.dim = 0;
            if self.improved_this_cycle {
                self.stale_cycles = 0;
            } else {
                self.stale_cycles += 1;
                if self.stale_cycles >= self.opts.max_stale_cycles {
                    self.done = true;
                    return;
                }
            }
            self.improved_this_cycle = false;
        }
        self.start_dim(space);
    }
}

impl SearchStrategy for GreedyOneParam {
    fn name(&self) -> &'static str {
        "greedy-one-param"
    }

    fn init(&mut self, space: &SearchSpace, _rng: &mut StdRng) {
        self.current = space
            .embed(&space.center())
            .expect("center embeds into its own space");
        self.current_cost = f64::INFINITY;
        self.dim = 0;
        self.improved_this_cycle = false;
        self.stale_cycles = 0;
        self.done = false;
        self.started = true;
        self.snapper.reset();
        self.start_dim(space);
    }

    fn propose(&mut self, space: &SearchSpace, _rng: &mut StdRng) -> Option<Vec<f64>> {
        if !self.started {
            let mut rng = rand::SeedableRng::seed_from_u64(0);
            self.init(space, &mut rng);
        }
        if self.done {
            return None;
        }
        let mut p = self.current.clone();
        p[self.dim] = self.probes[self.probe_idx];
        Some(self.snapper.snap(space, p))
    }

    fn feedback(&mut self, coords: &[f64], cost: f64, space: &SearchSpace, _rng: &mut StdRng) {
        if cost < self.current_cost {
            self.current_cost = cost;
            self.current = coords.to_vec();
            self.improved_this_cycle = true;
        }
        self.probe_idx += 1;
        if self.probe_idx >= self.probes.len() {
            self.next_dim(space);
        }
    }

    fn converged(&self) -> bool {
        self.done
    }
}

/// Seed the greedy sweep at explicit coordinates (e.g. the application's
/// default configuration).
pub struct GreedyFrom {
    inner: GreedyOneParam,
    start: Vec<f64>,
}

impl GreedyFrom {
    /// Start the sweep from `start`.
    pub fn new(start: Vec<f64>, opts: GreedyOptions) -> Self {
        GreedyFrom {
            inner: GreedyOneParam::new(opts),
            start,
        }
    }
}

impl SearchStrategy for GreedyFrom {
    fn name(&self) -> &'static str {
        "greedy-one-param"
    }

    fn init(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        self.inner.init(space, rng);
        self.inner.current = self.start.clone();
    }

    fn propose(&mut self, space: &SearchSpace, rng: &mut StdRng) -> Option<Vec<f64>> {
        self.inner.propose(space, rng)
    }

    fn feedback(&mut self, coords: &[f64], cost: f64, space: &SearchSpace, rng: &mut StdRng) {
        self.inner.feedback(coords, cost, space, rng)
    }

    fn converged(&self) -> bool {
        self.inner.converged()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::drive;

    #[test]
    fn greedy_solves_separable_objectives() {
        // Fully separable: coordinate descent is optimal here.
        let space = SearchSpace::builder()
            .int("a", 0, 7, 1)
            .int("b", 0, 7, 1)
            .enumeration("c", ["slow", "fast"])
            .build()
            .unwrap();
        let mut g = GreedyOneParam::default();
        let best = drive(&mut g, &space, 100, |cfg| {
            let a = cfg.int("a").unwrap() as f64;
            let b = cfg.int("b").unwrap() as f64;
            let c = if cfg.choice("c") == Some("fast") {
                0.0
            } else {
                5.0
            };
            (a - 6.0).abs() + (b - 1.0).abs() + c
        });
        assert_eq!(best, 0.0);
        assert!(g.converged());
    }

    #[test]
    fn greedy_terminates_after_stale_cycle() {
        let space = SearchSpace::builder().int("x", 0, 3, 1).build().unwrap();
        let mut g = GreedyOneParam::default();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        g.init(&space, &mut rng);
        let mut evals = 0;
        while let Some(p) = g.propose(&space, &mut rng) {
            let cfg = space.project(&p);
            g.feedback(&p, cfg.int("x").unwrap() as f64, &space, &mut rng);
            evals += 1;
            assert!(evals < 100, "greedy failed to terminate");
        }
        // Two cycles over 4 probes: one improving, one stale.
        assert!(evals <= 12, "evals={evals}");
    }

    #[test]
    fn greedy_struggles_on_coupled_objectives() {
        // x and y must move *together* (valley along x = y); coordinate
        // descent from the centre stalls above the global optimum that the
        // simplex reaches easily.
        let space = SearchSpace::builder()
            .int("x", 0, 40, 1)
            .int("y", 0, 40, 1)
            .build()
            .unwrap();
        let coupled = |cfg: &crate::space::Configuration| {
            let x = cfg.int("x").unwrap() as f64;
            let y = cfg.int("y").unwrap() as f64;
            (x - y).powi(2) * 10.0 + (x + y - 60.0).powi(2) * 0.1 + 1.0
        };
        let mut greedy = GreedyOneParam::default();
        let g_best = drive(&mut greedy, &space, 300, coupled);
        let mut nm = crate::strategy::NelderMead::default();
        let n_best = drive(&mut nm, &space, 300, coupled);
        assert!(
            n_best <= g_best,
            "simplex {n_best} should beat greedy {g_best} on coupled valleys"
        );
    }

    #[test]
    fn constrained_probes_snap_to_feasible_points_not_duplicates() {
        // b1 <= b2: probing b2 below b1 used to be *repaired* (sorted)
        // back onto the incumbent — a duplicate evaluation. The
        // feasibility-aware snap consults the compiled space instead, so
        // every proposal is a valid lattice point.
        let space = SearchSpace::builder()
            .int("b1", 0, 9, 1)
            .int("b2", 0, 9, 1)
            .constraint(crate::constraint::MonotoneChain::new(["b1", "b2"]))
            .build()
            .unwrap();
        let compiled = crate::space_compile::CompiledSpace::compile(&space).unwrap();
        assert_eq!(compiled.count_valid().lower_bound(), 55);
        let mut g = GreedyOneParam::default();
        let mut rng = rand::SeedableRng::seed_from_u64(0);
        g.init(&space, &mut rng);
        let mut unique = std::collections::HashSet::new();
        let mut proposals = 0;
        while let Some(p) = g.propose(&space, &mut rng) {
            proposals += 1;
            let values: Vec<_> = space
                .params()
                .iter()
                .zip(&p)
                .map(|(param, &c)| param.project(c))
                .collect();
            let cfg = space.configuration(values).expect("snapped proposal");
            assert!(space.is_valid(&cfg), "infeasible greedy probe {p:?}");
            unique.insert(cfg.cache_key());
            let b1 = cfg.int("b1").unwrap() as f64;
            let b2 = cfg.int("b2").unwrap() as f64;
            g.feedback(
                &p,
                (b1 - 2.0).powi(2) + (b2 - 8.0).powi(2),
                &space,
                &mut rng,
            );
            if proposals > 200 {
                break;
            }
        }
        // The sweep visits genuinely distinct feasible points (the old
        // repair path collapsed infeasible probes onto the incumbent).
        assert!(unique.len() >= 8, "only {} unique probes", unique.len());
        assert!(g.current_cost <= 1.0, "missed optimum: {}", g.current_cost);
    }

    #[test]
    fn greedy_from_starts_at_given_point() {
        let space = SearchSpace::builder().int("x", 0, 100, 1).build().unwrap();
        let mut g = GreedyFrom::new(vec![90.0], GreedyOptions::default());
        let best = drive(&mut g, &space, 40, |cfg| {
            (cfg.int("x").unwrap() as f64 - 85.0).abs()
        });
        // Probes are evenly spread, so the sweep finds the basin regardless
        // of start; starting near it just keeps the incumbent sensible.
        assert!(best <= 8.0, "best={best}");
    }
}

//! # Active Harmony (Rust reproduction)
//!
//! An automated performance-tuning system reproducing the design described in
//! I-Hsin Chung and Jeffrey K. Hollingsworth, *"A Case Study Using Automatic
//! Performance Tuning for Large-Scale Scientific Programs"* (HPDC 2006).
//!
//! The kernel is a [Nelder–Mead simplex](strategy::NelderMead) search adapted
//! to discrete parameter spaces: tunable parameters (integers, categorical
//! choices, decomposition boundaries, data layouts) are embedded as dimensions
//! of a continuous search space and every candidate point is projected to the
//! nearest valid lattice point before it is evaluated.
//!
//! Two tuning modes are provided, matching the paper:
//!
//! * **Off-line, iterative tuning** ([`offline`]): each tuning iteration is
//!   one *representative short run* of the application; the application is
//!   reconfigured and restarted between iterations, and restart/warm-up costs
//!   are charged to the tuning budget.
//! * **On-line tuning** ([`server`], [`online`]): a long-running application
//!   connects to the Harmony server, registers its tunable variables, and
//!   fetches fresh parameter values / reports observed performance from
//!   inside its run loop without restarting.
//!
//! ## Quick example
//!
//! ```
//! use ah_core::prelude::*;
//!
//! // Tune two integer parameters to minimise a synthetic cost function.
//! let space = SearchSpace::builder()
//!     .int("x", 0, 100, 1)
//!     .int("y", 0, 100, 1)
//!     .build()
//!     .unwrap();
//! let mut session = TuningSession::new(
//!     space,
//!     Box::new(NelderMead::default()),
//!     SessionOptions { max_evaluations: 200, seed: 42, ..Default::default() },
//! );
//! let result = session.run(|cfg| {
//!     let x = cfg.int("x").unwrap() as f64;
//!     let y = cfg.int("y").unwrap() as f64;
//!     (x - 30.0).powi(2) + (y - 70.0).powi(2)
//! });
//! assert!(result.best_cost < 25.0);
//! ```

#![warn(missing_docs)]

pub mod constraint;
pub mod error;
pub mod history;
pub mod meta;
pub mod objective;
pub mod offline;
pub mod online;
pub mod param;
pub mod priors;
pub mod report;
pub mod retry;
pub mod seeded;
pub mod server;
pub mod session;
pub mod space;
pub mod space_compile;
pub mod store;
pub mod strategy;
pub mod telemetry;
pub mod value;
pub mod wal;

/// Convenience re-exports of the types needed for typical tuning workflows.
pub mod prelude {
    pub use crate::constraint::{Constraint, ConstraintSpec, MonotoneChain, SumBound};
    pub use crate::error::HarmonyError;
    pub use crate::history::{Evaluation, History};
    pub use crate::meta::{
        MetaAnnealing, MetaGenetic, MetaNelderMead, MetaOptions, MetaOutcome, MetaSurrogate,
        MetaTrial, MetaTunable, MetaTuner,
    };
    pub use crate::objective::{Objective, PenalizedObjective, TradeoffObjective};
    pub use crate::offline::{OfflineTuner, RunMeasurement, ShortRunApp};
    pub use crate::online::OnlineTuner;
    pub use crate::param::Param;
    pub use crate::priors::PriorRunDb;
    pub use crate::report::TuningReport;
    pub use crate::retry::RetryPolicy;
    pub use crate::server::protocol::StrategyKind;
    pub use crate::server::{HarmonyClient, HarmonyServer, ServerConfig};
    pub use crate::session::{SearchSnapshot, SessionOptions, TuningResult, TuningSession};
    pub use crate::space::{Configuration, SearchSpace};
    pub use crate::space_compile::{
        Band, CompileStats, CompiledSpace, FeasibleCount, PointCursor, SpaceCursor, ValidPoints,
    };
    pub use crate::store::{
        space_fingerprint, PerfStore, SharedStore, StoreRecord, StoreStats, StoredCost,
    };
    pub use crate::strategy::{
        Annealing, AnnealingOptions, AnnealingSnapshot, Exhaustive, Genetic, GeneticOptions,
        GeneticSnapshot, GreedyFrom, GreedyOneParam, GreedyOptions, GridSearch, NelderMead,
        NelderMeadOptions, ParallelRankOrder, ProOptions, RandomSearch, SearchStrategy,
        SimplexSnapshot, StartPoint, StrategySnapshot, Surrogate, SurrogateOptions,
        SurrogateSnapshot,
    };
    pub use crate::telemetry::{
        Counter, Latency, SpanEvent, SpanKind, SpanToken, Telemetry, TrialEvent, TrialStage,
    };
    pub use crate::value::ParamValue;
    pub use crate::wal::{WalHeader, WalSession};
}

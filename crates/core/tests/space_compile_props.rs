//! Property tests for the search-space compiler.
//!
//! The compiler's contract is *exact* equivalence with the naive approach:
//! enumerate the whole raw lattice product in mixed-radix order and filter
//! by `SearchSpace::is_valid`. On randomly generated small constrained
//! spaces (chains, sum bounds, opaque constraints, in any mix) the
//! compiled stream must produce the same configurations in the same order,
//! bit-identically — pruning may only ever skip *invalid* points. The
//! store fingerprint has its own contract: insensitive to constraint
//! ordering, byte-stable against the historical params-only scheme for
//! spaces without describable constraints.

use ah_core::constraint::{Constraint, MonotoneChain, SumBound};
use ah_core::param::Param;
use ah_core::prelude::*;
use ah_core::space_compile::{CompiledSpace, FeasibleCount, SpaceCursor};
use ah_core::store::space_fingerprint;
use proptest::prelude::*;

/// Sum of the integer parameters must be even — deliberately opaque (no
/// `ConstraintSpec`), forcing the compiler onto its full-point fallback.
#[derive(Debug)]
struct EvenIntSum;

impl Constraint for EvenIntSum {
    fn repair(&self, _space: &SearchSpace, _coords: &mut [f64]) {}
    fn is_satisfied(&self, _space: &SearchSpace, cfg: &Configuration) -> bool {
        let sum: i64 = cfg.values().iter().filter_map(|v| v.as_int()).sum();
        sum % 2 == 0
    }
    fn check_space(&self, _space: &SearchSpace) -> std::result::Result<(), HarmonyError> {
        Ok(())
    }
}

/// Tiny deterministic generator so a single proptest `u64` seeds a whole
/// random space (the vendored proptest has no recursive strategies).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// A random small space: 2–4 int dims (mixed mins/steps/cardinalities),
/// sometimes an enum dim, and 0–2 constraints drawn from chain / sum /
/// opaque. Raw products stay under ~1500 points so naive enumeration is
/// cheap ground truth.
fn random_space(seed: u64) -> SearchSpace {
    let mut g = Lcg(seed.wrapping_add(0x9e37_79b9));
    let dims = 2 + g.below(3) as usize; // 2..=4 int dims
    let mut b = SearchSpace::builder();
    let mut int_names = Vec::new();
    for d in 0..dims {
        let name = format!("p{d}");
        let min = g.below(7) as i64 - 3;
        let step = [1, 1, 2, 5][g.below(4) as usize];
        let card = 2 + g.below(4) as i64; // 2..=5 lattice points
        b = b.int(&name, min, min + step * (card - 1), step);
        int_names.push(name);
    }
    let with_enum = g.below(3) == 0;
    if with_enum {
        b = b.enumeration("mode", ["fast", "slow", "safe"]);
    }
    for _ in 0..g.below(3) {
        match g.below(3) {
            0 => {
                // Chain over a contiguous run of int dims.
                let from = g.below(int_names.len() as u64 - 1) as usize;
                let names: Vec<&str> = int_names[from..].iter().map(String::as_str).collect();
                b = b.constraint(MonotoneChain::new(names));
            }
            1 => {
                // Sum bound over all int dims, sometimes unsatisfiable.
                let lo = g.below(20) as f64 - 10.0;
                let hi = lo + g.below(15) as f64;
                let names: Vec<&str> = int_names.iter().map(String::as_str).collect();
                b = b.constraint(SumBound::new(names, lo, hi));
            }
            _ => {
                b = b.constraint(EvenIntSum);
            }
        }
    }
    b.build().expect("generated spaces are well-formed")
}

/// Ground truth: walk the raw product in mixed-radix order (dim 0 most
/// significant) and keep what `is_valid` accepts.
fn naive_filter(space: &SearchSpace) -> Vec<Configuration> {
    let radix: Vec<u64> = space
        .params()
        .iter()
        .map(|p| p.cardinality().expect("discrete"))
        .collect();
    let mut counter = vec![0u64; radix.len()];
    let mut out = Vec::new();
    'outer: loop {
        let values: Vec<ParamValue> = space
            .params()
            .iter()
            .zip(&counter)
            .map(|(p, &i)| match p {
                Param::Int { min, step, .. } => ParamValue::Int(min + i as i64 * step),
                Param::Enum { choices, .. } => ParamValue::Enum {
                    index: i as usize,
                    label: choices[i as usize].clone(),
                },
                Param::Real { .. } => unreachable!(),
            })
            .collect();
        let cfg = space.configuration(values).expect("lattice point is typed");
        if space.is_valid(&cfg) {
            out.push(cfg);
        }
        for d in (0..counter.len()).rev() {
            counter[d] += 1;
            if counter[d] < radix[d] {
                continue 'outer;
            }
            counter[d] = 0;
        }
        return out;
    }
}

/// The historical params-only fingerprint scheme, reproduced independently
/// so drift in `space_fingerprint` for unconstrained spaces is caught even
/// if both sides of the comparison change together in store.rs.
fn legacy_fingerprint(space: &SearchSpace) -> u64 {
    let blob = serde_json::to_string(&space.params()).expect("params serialize");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in blob.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled enumeration == naive enumerate-and-filter: same points,
    /// same order, bit-identical values, and the exact count agrees.
    #[test]
    fn compiled_stream_equals_naive_filter(seed in 0u64..1_000_000) {
        let space = random_space(seed);
        let expected = naive_filter(&space);
        let cs = CompiledSpace::compile(&space).expect("discrete space compiles");
        let compiled: Vec<Configuration> = cs.iter().collect();
        prop_assert_eq!(compiled.len(), expected.len());
        for (a, b) in compiled.iter().zip(&expected) {
            prop_assert_eq!(a, b);
            prop_assert_eq!(a.cache_key(), b.cache_key());
        }
        prop_assert_eq!(cs.count_valid(), FeasibleCount::Exact(expected.len() as u64));
    }

    /// Chunked enumeration through resumable cursors concatenates to the
    /// exact full stream, for any chunk size.
    #[test]
    fn chunked_cursors_are_seamless(seed in 0u64..1_000_000, chunk in 1usize..40) {
        let space = random_space(seed);
        let cs = CompiledSpace::compile(&space).expect("discrete space compiles");
        let whole: Vec<Configuration> = cs.iter().collect();
        let mut chunked = Vec::new();
        let mut cursor = Some(SpaceCursor::default());
        while let Some(c) = cursor {
            let (points, next) = cs.next_chunk(&c, chunk).expect("cursor stays valid");
            if next.is_some() {
                prop_assert_eq!(points.len(), chunk);
            }
            chunked.extend(points);
            cursor = next;
        }
        prop_assert_eq!(whole, chunked);
    }

    /// Banded (parallel-style) enumeration partitions the stream exactly.
    #[test]
    fn bands_partition_the_stream(seed in 0u64..1_000_000, parts in 1usize..8) {
        let space = random_space(seed);
        let cs = CompiledSpace::compile(&space).expect("discrete space compiles");
        let whole: Vec<Configuration> = cs.iter().collect();
        let banded: Vec<Configuration> = cs
            .bands(parts)
            .into_iter()
            .flat_map(|band| cs.iter_band(band).collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(whole, banded);
    }

    /// The fingerprint ignores constraint ordering and never changes for
    /// spaces without describable constraints.
    #[test]
    fn fingerprint_contract(seed in 0u64..1_000_000) {
        let mut g = Lcg(seed);
        let dims = 2 + g.below(3) as usize;
        let base = |chain_first: bool| {
            let mut b = SearchSpace::builder();
            for d in 0..dims {
                b = b.int(format!("p{d}"), 0, 9, 1);
            }
            let chain = MonotoneChain::new(["p0", "p1"]);
            let sum = SumBound::new(["p0", "p1"], 2.0, 14.0);
            if chain_first {
                b.constraint(chain).constraint(sum)
            } else {
                b.constraint(sum).constraint(chain)
            }
            .build()
            .unwrap()
        };
        prop_assert_eq!(
            space_fingerprint(&base(true)),
            space_fingerprint(&base(false))
        );

        // Unconstrained (and opaque-only) spaces keep the legacy hash, so
        // records written by older stores still resolve.
        let mut plain = SearchSpace::builder();
        for d in 0..dims {
            plain = plain.int(format!("p{d}"), 0, 9, 1);
        }
        let unconstrained = plain.build().unwrap();
        prop_assert_eq!(
            space_fingerprint(&unconstrained),
            legacy_fingerprint(&unconstrained)
        );
        let mut opaque = SearchSpace::builder();
        for d in 0..dims {
            opaque = opaque.int(format!("p{d}"), 0, 9, 1);
        }
        let opaque = opaque.constraint(EvenIntSum).build().unwrap();
        prop_assert_eq!(space_fingerprint(&opaque), legacy_fingerprint(&opaque));

        // And a random generated space agrees with itself when rebuilt.
        prop_assert_eq!(
            space_fingerprint(&random_space(seed)),
            space_fingerprint(&random_space(seed))
        );
    }
}

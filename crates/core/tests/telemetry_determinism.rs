//! Property test for the telemetry contract: observation is deterministic
//! and complete.
//!
//! Running the same faulty tuning session twice — same strategy, session
//! seed, and fault plan — must record the identical lifecycle event
//! sequence and identical counter totals. Telemetry is a pure observer: it
//! cannot perturb the trajectory, and a faulted run's trace is exactly
//! reproducible from its seeds. Wall-clock fields (event timestamps,
//! latency histograms) are excluded from the comparison; everything else
//! is covered.

use ah_clustersim::{FaultKind, FaultPlan};
use ah_core::prelude::*;
use ah_core::server::protocol::TrialReport;
use ah_core::server::{HarmonyClient, ServerConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn declare(c: &HarmonyClient) {
    c.add_param(Param::int("x", 0, 80, 1)).unwrap();
    c.add_param(Param::int("y", -30, 30, 1)).unwrap();
}

fn objective(cfg: &Configuration) -> f64 {
    let x = cfg.int("x").expect("x") as f64;
    let y = cfg.int("y").expect("y") as f64;
    (x - 52.0).powi(2) * 0.5 + (y - 7.0).powi(2)
}

/// A straggler's report, parked until `ticks` driver rounds have passed.
struct Held {
    ticks: u32,
    report: TrialReport,
}

/// One full faulty run (the `fault_tolerance.rs` harness) observed through
/// an enabled telemetry handle. Returns everything deterministic about the
/// observation: the lifecycle event sequence, the counter totals, and the
/// history JSON.
type Observation = (
    Vec<(TrialStage, usize, Option<&'static str>)>,
    Vec<(&'static str, u64)>,
    String,
);

fn observed_faulty_run(strategy: StrategyKind, seed: u64, plan: FaultPlan) -> Observation {
    let telemetry = Telemetry::enabled();
    let server = HarmonyServer::start_with_config(ServerConfig {
        shards: 2,
        telemetry: telemetry.clone(),
        ..Default::default()
    });
    let founder = server.connect("observed").unwrap();
    declare(&founder);
    founder
        .seal(
            SessionOptions {
                max_evaluations: 40,
                seed,
                ..Default::default()
            },
            strategy,
        )
        .unwrap();
    let session = founder.session_id();
    let mut members: Vec<HarmonyClient> = (0..3).map(|_| server.attach(session).unwrap()).collect();

    let mut held: Vec<Held> = Vec::new();
    let mut faulted: HashSet<usize> = HashSet::new();
    let mut finished = false;
    let mut rounds = 0u32;
    while !finished {
        rounds += 1;
        assert!(rounds < 10_000, "faulty driver is not converging");
        for h in held.iter_mut() {
            h.ticks -= 1;
        }
        let mut due = Vec::new();
        held.retain_mut(|h| {
            if h.ticks == 0 {
                due.push(h.report.clone());
                false
            } else {
                true
            }
        });
        if !due.is_empty() {
            founder.report_batch(due).unwrap();
        }
        for member in members.iter_mut() {
            let (trials, fin) = member.fetch_batch(1).unwrap();
            if fin {
                finished = true;
                break;
            }
            let Some(t) = trials.into_iter().next() else {
                continue;
            };
            if held.iter().any(|h| h.report.iteration == t.iteration) {
                continue;
            }
            let report = TrialReport {
                iteration: t.iteration,
                cost: objective(&t.config),
                wall_time: objective(&t.config),
            };
            let fault = if faulted.insert(t.iteration) {
                plan.at_observed(t.iteration as u64, &telemetry)
            } else {
                FaultKind::None
            };
            match fault {
                FaultKind::None => member.report_batch(vec![report]).unwrap(),
                FaultKind::Crash => {
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::LostReport => {
                    held.push(Held { ticks: 4, report });
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::Straggler { factor } => {
                    held.push(Held {
                        ticks: (factor as u32).clamp(2, 8),
                        report,
                    });
                }
            }
        }
    }
    let (h, finished) = founder.history().unwrap();
    assert!(finished);
    server.shutdown();
    (
        telemetry.lifecycle(),
        telemetry.counters(),
        serde_json::to_string(&h).unwrap(),
    )
}

fn check(strategy: StrategyKind, seed: u64, fault_seed: u64) {
    let plan = FaultPlan::new(fault_seed, 0.15, 0.10, 0.20);
    let (events_a, counters_a, history_a) = observed_faulty_run(strategy.clone(), seed, plan);
    let (events_b, counters_b, history_b) = observed_faulty_run(strategy.clone(), seed, plan);
    assert_eq!(
        events_a, events_b,
        "{strategy:?}: lifecycle event sequence diverged between identical runs"
    );
    assert_eq!(
        counters_a, counters_b,
        "{strategy:?}: counter totals diverged between identical runs"
    );
    assert_eq!(history_a, history_b, "{strategy:?}: trajectory diverged");

    // Completeness: every proposed trial must eventually be reported, and
    // every recorded requeue/eviction/fault must carry a cause.
    let proposed: HashSet<usize> = events_a
        .iter()
        .filter(|(s, _, _)| *s == TrialStage::Proposed)
        .map(|&(_, i, _)| i)
        .collect();
    let reported: HashSet<usize> = events_a
        .iter()
        .filter(|(s, _, _)| *s == TrialStage::Reported)
        .map(|&(_, i, _)| i)
        .collect();
    assert_eq!(
        proposed, reported,
        "{strategy:?}: some proposed trials were never reported"
    );
    for (stage, iteration, cause) in &events_a {
        if matches!(
            stage,
            TrialStage::Requeued | TrialStage::Evicted | TrialStage::Faulted
        ) {
            assert!(
                cause.is_some(),
                "{strategy:?}: {stage:?} of trial {iteration} has no cause"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_observation_is_deterministic(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::Random, seed, fs);
    }

    #[test]
    fn nelder_mead_observation_is_deterministic(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::NelderMead, seed, fs);
    }

    #[test]
    fn pro_observation_is_deterministic(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::Pro, seed, fs);
    }
}

//! `/fleet` cross-server aggregation: two federated servers, each driven
//! by its own tenant, must show up in one `/fleet` view with per-peer
//! evaluation counters, merged per-tenant series, and graceful staleness
//! when a peer goes away.

use ah_core::param::Param;
use ah_core::server::observe::http_get;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::tcp::{TcpClientOptions, TcpHarmonyClient};
use ah_core::server::{ObserveHandle, ServerConfig, TcpHarmonyServer};
use ah_core::session::SessionOptions;
use ah_core::store::SharedStore;
use ah_core::telemetry::Telemetry;
use serde_json::Value;
use std::time::Duration;

const EVALS: usize = 12;

fn spawn_server(
    store: &std::path::Path,
    sync_peers: Vec<String>,
) -> (TcpHarmonyServer, ObserveHandle, String) {
    let telemetry = Telemetry::enabled();
    let shared = SharedStore::open_with(store, telemetry.clone()).unwrap();
    let server = TcpHarmonyServer::bind_with(
        "127.0.0.1:0",
        64,
        ServerConfig {
            shards: 1,
            telemetry,
            store: Some(shared),
            sync_peers,
            sync_interval: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .unwrap();
    let observe = server.observe("127.0.0.1:0").unwrap();
    let addr = observe.addr().to_string();
    (server, observe, addr)
}

fn drive_campaign(server: &TcpHarmonyServer, app: &str, tenant: &str) {
    let opts = TcpClientOptions {
        tenant: tenant.to_string(),
        ..Default::default()
    };
    let mut client = TcpHarmonyClient::connect_with(server.local_addr(), app, opts).unwrap();
    client.add_param(Param::int("x", 0, 1000, 1)).unwrap();
    client
        .seal(
            SessionOptions {
                max_evaluations: EVALS,
                max_cached_replays: EVALS,
                seed: 7,
                ..Default::default()
            },
            StrategyKind::Random,
        )
        .unwrap();
    let mut done = 0usize;
    while done < EVALS {
        let (trials, finished) = client.fetch_batch(4).unwrap();
        if finished {
            break;
        }
        let reports: Vec<TrialReport> = trials
            .iter()
            .map(|t| TrialReport {
                iteration: t.iteration,
                cost: t.config.int("x").unwrap() as f64,
                wall_time: 0.0,
            })
            .collect();
        done += reports.len();
        client.report_batch(reports).unwrap();
    }
    client.close();
}

fn fleet_doc(addr: &str) -> Value {
    let (code, body) = http_get(addr, "/fleet").expect("fleet reachable");
    assert_eq!(code, 200, "{body}");
    serde_json::parse(&body).expect("fleet is JSON")
}

#[test]
fn fleet_aggregates_two_federated_servers() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let store_a = dir.join(format!("ah-fleet-a-{pid}.store"));
    let store_b = dir.join(format!("ah-fleet-b-{pid}.store"));
    let _ = std::fs::remove_file(&store_a);
    let _ = std::fs::remove_file(&store_b);

    let (server_b, observe_b, addr_b) = spawn_server(&store_b, Vec::new());
    let (server_a, observe_a, addr_a) = spawn_server(&store_a, vec![addr_b.clone()]);

    drive_campaign(&server_a, "fleet-app-a", "acme");
    drive_campaign(&server_b, "fleet-app-b", "globex");

    let doc = fleet_doc(&addr_a);
    assert_eq!(doc.get("peers").and_then(Value::as_u64), Some(2), "{doc:?}");
    assert_eq!(doc.get("fresh").and_then(Value::as_u64), Some(2), "{doc:?}");

    // Both peers report their own evaluation counters.
    let rows = doc.get("rows").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), 2);
    for row in rows {
        let evals = row.get("evaluations").and_then(Value::as_u64).unwrap();
        assert_eq!(
            evals as usize,
            EVALS,
            "row {:?}",
            row.get("addr").and_then(Value::as_str)
        );
    }
    let self_rows = rows
        .iter()
        .filter(|r| r.get("self").and_then(Value::as_bool) == Some(true))
        .count();
    assert_eq!(self_rows, 1, "exactly one row is the answering server");

    // Totals sum across the fleet; tenants merge across peers.
    let totals = doc.get("totals").unwrap();
    assert_eq!(
        totals.get("evaluations").and_then(Value::as_u64),
        Some(2 * EVALS as u64)
    );
    let tenants = doc.get("tenants").unwrap();
    for tenant in ["acme", "globex"] {
        let evals = tenants
            .get(tenant)
            .and_then(|t| t.get("evaluations"))
            .and_then(Value::as_u64);
        assert_eq!(evals, Some(EVALS as u64), "tenant {tenant}: {tenants:?}");
    }

    // The per-tenant series are also on each server's own exposition.
    let (code, metrics) = http_get(&addr_a, "/metrics").unwrap();
    assert_eq!(code, 200);
    assert!(
        metrics.contains("ah_tenant_evaluations_total{tenant=\"acme\"}"),
        "{metrics}"
    );

    // Peer loss degrades to a stale cached row, not a blank: take B's
    // observe plane down and the next /fleet still carries its last-known
    // counters, marked stale with an age.
    observe_b.stop();
    server_b.shutdown();
    let doc = fleet_doc(&addr_a);
    assert_eq!(doc.get("fresh").and_then(Value::as_u64), Some(1), "{doc:?}");
    let rows = doc.get("rows").and_then(Value::as_array).unwrap();
    let stale = rows
        .iter()
        .find(|r| r.get("addr").and_then(Value::as_str) == Some(addr_b.as_str()))
        .unwrap_or_else(|| panic!("no row for {addr_b}: {doc:?}"));
    assert_eq!(stale.get("fresh").and_then(Value::as_bool), Some(false));
    assert_eq!(
        stale.get("evaluations").and_then(Value::as_u64),
        Some(EVALS as u64),
        "stale row must keep last-known counters: {stale:?}"
    );
    assert!(
        stale.get("age_s").and_then(Value::as_f64).is_some(),
        "{stale:?}"
    );

    observe_a.stop();
    server_a.shutdown();
    let _ = std::fs::remove_file(&store_a);
    let _ = std::fs::remove_file(&store_b);
}

/// A peer that was never reachable gets an explicit error row instead of
/// poisoning the whole aggregation.
#[test]
fn fleet_marks_never_seen_peers_unreachable() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let store_a = dir.join(format!("ah-fleet-stale-a-{pid}.store"));
    let store_b = dir.join(format!("ah-fleet-stale-b-{pid}.store"));
    let _ = std::fs::remove_file(&store_a);
    let _ = std::fs::remove_file(&store_b);

    // B is real; a third peer address is never bound at all.
    let (server_b, observe_b, addr_b) = spawn_server(&store_b, Vec::new());
    drive_campaign(&server_b, "stale-app", "initech");
    let (server_a, observe_a, addr_a) =
        spawn_server(&store_a, vec![addr_b.clone(), "127.0.0.1:1".to_string()]);

    let doc = fleet_doc(&addr_a);
    let rows = doc.get("rows").and_then(Value::as_array).unwrap();
    assert_eq!(rows.len(), 3, "{doc:?}");
    let row_of = |addr: &str| {
        rows.iter()
            .find(|r| r.get("addr").and_then(Value::as_str) == Some(addr))
            .unwrap_or_else(|| panic!("no row for {addr}: {doc:?}"))
    };
    // The live peer is fresh with its counters and tenant slice.
    let live = row_of(&addr_b);
    assert_eq!(live.get("fresh").and_then(Value::as_bool), Some(true));
    assert_eq!(
        live.get("evaluations").and_then(Value::as_u64),
        Some(EVALS as u64)
    );
    // The never-reachable peer carries an explicit error and no counters.
    let dead = row_of("127.0.0.1:1");
    assert_eq!(dead.get("fresh").and_then(Value::as_bool), Some(false));
    assert!(dead.get("error").is_some(), "{dead:?}");
    // Only live rows count toward freshness (self + B).
    assert_eq!(doc.get("fresh").and_then(Value::as_u64), Some(2));
    // The merged tenant view still carries the reachable peer's slice.
    let evals = doc
        .get("tenants")
        .and_then(|t| t.get("initech"))
        .and_then(|t| t.get("evaluations"))
        .and_then(Value::as_u64);
    assert_eq!(evals, Some(EVALS as u64), "{doc:?}");

    observe_b.stop();
    server_b.shutdown();
    observe_a.stop();
    server_a.shutdown();
    let _ = std::fs::remove_file(&store_a);
    let _ = std::fs::remove_file(&store_b);
}

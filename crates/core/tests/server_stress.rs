//! Concurrency stress and protocol-level tests for the sharded Harmony
//! server: many clients over both transports, and frame accounting showing
//! that a whole PRO round costs exactly one request/reply pair each way.

use ah_core::param::Param;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::{HarmonyServer, TcpHarmonyClient, TcpHarmonyServer};
use ah_core::session::SessionOptions;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;

const CLIENTS: usize = 16;
const ITERS: usize = 200;

fn options(seed: u64) -> SessionOptions {
    SessionOptions {
        max_evaluations: ITERS,
        // Keep cache replays from ending a session before its budget: the
        // point here is sustained traffic, not convergence.
        max_cached_replays: ITERS,
        seed,
        ..Default::default()
    }
}

/// Each client minimizes |x - target| for its own target and records every
/// configuration it was served. At the end, the server's best must be
/// bit-identical to the best the client itself observed: if any state
/// leaked between clients (shared session, crossed replies, clobbered
/// outstanding trials), the server's best cost or best point would belong
/// to some other client's stream.
fn target_of(i: usize) -> i64 {
    (i as i64) * 61 + 7
}

fn check_own_best(i: usize, seen: &[(i64, f64)], best_x: i64, best_cost: f64) {
    let (own_x, own_cost) = seen
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("client measured something");
    assert_eq!(
        best_cost.to_bits(),
        own_cost.to_bits(),
        "client {i}: server best cost {best_cost} is not the client's own {own_cost}"
    );
    assert_eq!(
        best_x, own_x,
        "client {i}: server best point is not the client's own"
    );
}

#[test]
fn sixteen_inproc_clients_tune_independently() {
    let server = HarmonyServer::start_with(4);
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|s| {
        for i in 0..CLIENTS {
            let client = server.connect(format!("stress-{i}")).expect("connect");
            let barrier = &barrier;
            s.spawn(move || {
                client
                    .add_param(Param::int("x", 0, 1000, 1))
                    .expect("param");
                client
                    .seal(options(i as u64 + 1), StrategyKind::Random)
                    .expect("seal");
                barrier.wait();
                let target = target_of(i);
                let mut seen = Vec::with_capacity(ITERS);
                for _ in 0..ITERS {
                    let fetched = client.fetch().expect("fetch");
                    if fetched.finished {
                        break;
                    }
                    let x = fetched.config.int("x").expect("x");
                    let cost = (x - target).abs() as f64;
                    seen.push((x, cost));
                    client.report_timed(cost, 0.0).expect("report");
                }
                let (best, cost) = client.best().expect("best").expect("some best");
                check_own_best(i, &seen, best.int("x").expect("x"), cost);
            });
        }
    });
    assert_eq!(server.client_count(), CLIENTS);
    server.shutdown();
}

#[test]
fn sixteen_tcp_clients_tune_independently() {
    let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|s| {
        for i in 0..CLIENTS {
            let barrier = &barrier;
            s.spawn(move || {
                let mut client =
                    TcpHarmonyClient::connect(addr, &format!("stress-{i}")).expect("connect");
                client
                    .add_param(Param::int("x", 0, 1000, 1))
                    .expect("param");
                client
                    .seal(options(i as u64 + 1), StrategyKind::Random)
                    .expect("seal");
                barrier.wait();
                let target = target_of(i);
                let mut seen = Vec::with_capacity(ITERS);
                let mut done = 0;
                while done < ITERS {
                    // Odd clients exercise the batched path, even ones the
                    // serial path, concurrently against the same server.
                    if i % 2 == 1 {
                        let (trials, finished) = client.fetch_batch(8).expect("fetch_batch");
                        if finished {
                            break;
                        }
                        assert!(!trials.is_empty());
                        let reports: Vec<TrialReport> = trials
                            .iter()
                            .map(|t| {
                                let x = t.config.int("x").expect("x");
                                let cost = (x - target).abs() as f64;
                                seen.push((x, cost));
                                TrialReport {
                                    iteration: t.iteration,
                                    cost,
                                    wall_time: 0.0,
                                }
                            })
                            .collect();
                        done += reports.len();
                        client.report_batch(reports).expect("report_batch");
                    } else {
                        let (cfg, finished) = client.fetch().expect("fetch");
                        if finished {
                            break;
                        }
                        let x = cfg.int("x").expect("x");
                        let cost = (x - target).abs() as f64;
                        seen.push((x, cost));
                        client.report(cost).expect("report");
                        done += 1;
                    }
                }
                let (best, cost) = client.best().expect("best").expect("some best");
                check_own_best(i, &seen, best.int("x").expect("x"), cost);
                client.close();
            });
        }
    });
    server.shutdown();
}

/// Raw-socket helper: write one request frame (a single JSON line), read
/// back exactly one reply frame.
fn frame(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: serde_json::Value,
) -> serde_json::Value {
    let mut blob = serde_json::to_string(&request).expect("frame serializes");
    blob.push('\n');
    writer.write_all(blob.as_bytes()).expect("write frame");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read frame");
    assert!(!line.is_empty(), "server closed the connection");
    serde_json::from_str(&line).expect("reply frame is JSON")
}

/// The acceptance property of the batch protocol: one PRO round of K
/// candidates crosses the wire as exactly one `FetchBatch` request frame
/// (answered by one `Configs` frame carrying all K) and one `ReportBatch`
/// request frame (answered by one `Ok`). Counting is structural — every
/// `frame()` call is one line out, one line in.
#[test]
fn pro_round_is_one_fetchbatch_and_one_reportbatch() {
    let server = TcpHarmonyServer::bind("127.0.0.1:0").expect("bind");
    let mut writer = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));

    let reply = frame(
        &mut writer,
        &mut reader,
        serde_json::json!({"Register": {"app": "pro-frames"}}),
    );
    assert!(reply.get("Registered").is_some(), "{reply:?}");
    for p in ["x", "y"] {
        let param = Param::int(p, 0, 100, 1);
        let reply = frame(
            &mut writer,
            &mut reader,
            serde_json::json!({"AddParam": {"param": param}}),
        );
        assert_eq!(reply, serde_json::json!("Ok"), "{reply:?}");
    }
    let reply = frame(
        &mut writer,
        &mut reader,
        serde_json::json!({"Seal": {
            "options": options(3),
            "strategy": "Pro",
        }}),
    );
    assert_eq!(reply, serde_json::json!("Ok"), "{reply:?}");

    // Frame 1: FetchBatch with room to spare returns the whole round — PRO
    // proposes its entire simplex before needing any feedback, and the
    // session will not run ahead into the next round.
    let reply = frame(
        &mut writer,
        &mut reader,
        serde_json::json!({"FetchBatch": {"max": 64}}),
    );
    let round = reply["Configs"]["trials"]
        .as_array()
        .unwrap_or_else(|| panic!("expected Configs, got {reply:?}"))
        .to_vec();
    let k = round.len();
    assert!(k >= 2, "a PRO round has several candidates, got {k}");
    let iterations: HashSet<u64> = round
        .iter()
        .map(|t| t["iteration"].as_u64().expect("iteration"))
        .collect();
    assert_eq!(iterations.len(), k, "iteration tokens are distinct");

    // Frame 2: one ReportBatch answers all K candidates.
    let reports: Vec<serde_json::Value> = round
        .iter()
        .map(|t| {
            // Configuration serializes as parallel names/values vectors.
            let names = t["config"]["names"].as_array().expect("names");
            let idx = names
                .iter()
                .position(|n| n.as_str() == Some("x"))
                .expect("param x present");
            let x = t["config"]["values"][idx]["Int"].as_i64().expect("int x");
            serde_json::json!({
                "iteration": t["iteration"],
                "cost": (x - 40).abs() as f64,
                "wall_time": 0.0,
            })
        })
        .collect();
    let reply = frame(
        &mut writer,
        &mut reader,
        serde_json::json!({"ReportBatch": {"reports": reports}}),
    );
    assert_eq!(reply, serde_json::json!("Ok"), "{reply:?}");

    // The round advanced: the next fetch serves fresh trials, none reusing
    // a consumed iteration token.
    let reply = frame(
        &mut writer,
        &mut reader,
        serde_json::json!({"FetchBatch": {"max": 64}}),
    );
    let next = reply["Configs"]["trials"]
        .as_array()
        .unwrap_or_else(|| panic!("expected Configs, got {reply:?}"))
        .to_vec();
    assert!(!next.is_empty());
    for t in next.iter() {
        let it = t["iteration"].as_u64().expect("iteration");
        assert!(!iterations.contains(&it), "token {it} served twice");
    }
    server.shutdown();
}

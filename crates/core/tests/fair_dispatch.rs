//! Property test for deficit-round-robin tenant fairness.
//!
//! The dispatch contract: whatever other tenants do to a shard, a
//! tenant's own tuning trajectory is exactly what it would have been on an
//! idle server. A small tenant's campaign runs once solo and once while a
//! noisy tenant keeps the same single shard saturated with concurrent
//! sessions; the two histories must match bit for bit, and the contended
//! run must actually finish (DRR hands the small tenant its turn no
//! matter how deep the noisy tenant's backlog is).

use ah_core::prelude::*;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::ServerConfig;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn run_campaign(server: &HarmonyServer, app: &str, tenant: &str, seed: u64) -> History {
    let c = server.connect_as(app, tenant).unwrap();
    c.add_param(Param::int("x", 0, 90, 1)).unwrap();
    c.seal(
        SessionOptions {
            max_evaluations: 25,
            seed,
            ..Default::default()
        },
        StrategyKind::NelderMead,
    )
    .unwrap();
    loop {
        let (trials, finished) = c.fetch_batch(3).unwrap();
        if finished {
            break;
        }
        let reports = trials
            .iter()
            .map(|t| TrialReport {
                iteration: t.iteration,
                cost: (t.config.int("x").unwrap() as f64 - 31.0).powi(2),
                wall_time: 0.0,
            })
            .collect();
        c.report_batch(reports).unwrap();
    }
    let (h, finished) = c.history().unwrap();
    assert!(finished);
    c.leave().unwrap();
    h
}

fn single_shard_server() -> HarmonyServer {
    HarmonyServer::start_with_config(ServerConfig {
        shards: 1,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn tenant_trajectory_is_bit_identical_to_its_solo_run(
        seed in 1u64..10_000,
        noisy in 2usize..7,
    ) {
        // Solo reference: the small tenant alone on the server.
        let solo_server = single_shard_server();
        let solo = run_campaign(&solo_server, "victim", "small", seed);
        solo_server.shutdown();

        // Contended run: `noisy` clients of a big tenant hammer the same
        // shard with endless fetch/report traffic the whole time.
        let server = single_shard_server();
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..noisy)
            .map(|i| {
                let c = server
                    .connect_as(format!("noise-{i}"), "big")
                    .unwrap();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    c.add_param(Param::int("x", 0, 1000, 1)).unwrap();
                    c.seal(
                        SessionOptions {
                            max_evaluations: usize::MAX / 4,
                            seed: i as u64 + 1,
                            ..Default::default()
                        },
                        StrategyKind::Random,
                    )
                    .unwrap();
                    while !stop.load(Ordering::Relaxed) {
                        let (trials, _) = c.fetch_batch(4).unwrap();
                        let reports = trials
                            .iter()
                            .map(|t| TrialReport {
                                iteration: t.iteration,
                                cost: 1.0,
                                wall_time: 0.0,
                            })
                            .collect();
                        c.report_batch(reports).unwrap();
                    }
                    c.leave().unwrap();
                })
            })
            .collect();
        let contended = run_campaign(&server, "victim", "small", seed);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();

        prop_assert_eq!(solo.len(), contended.len());
        for (a, b) in solo.evaluations().iter().zip(contended.evaluations()) {
            prop_assert_eq!(a.iteration, b.iteration);
            prop_assert_eq!(a.config.cache_key(), b.config.cache_key());
            prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }
}

//! `/healthz` SLO engine end-to-end: the endpoint must flip
//! 200 → 503 → 200 as injected faults breach a rule and then clear, with
//! per-rule verdicts explaining each state.

use ah_core::server::observe::http_get;
use ah_core::server::{HarmonyServer, ServerConfig};
use ah_core::telemetry::slo::parse_rules;
use ah_core::telemetry::timeseries::TimeSeries;
use ah_core::telemetry::{Latency, SpanKind, Telemetry};
use serde_json::Value;
use std::time::Duration;

fn health(addr: &str) -> (u16, Value) {
    let (code, body) = http_get(addr, "/healthz").expect("healthz reachable");
    (code, serde_json::parse(&body).expect("healthz is JSON"))
}

fn verdict<'a>(doc: &'a Value, metric: &str) -> &'a Value {
    doc.get("rules")
        .and_then(Value::as_array)
        .and_then(|rules| {
            rules.iter().find(|r| {
                r.get("rule")
                    .and_then(Value::as_str)
                    .is_some_and(|s| s.starts_with(metric))
            })
        })
        .unwrap_or_else(|| panic!("no verdict for {metric}: {doc:?}"))
}

/// An open-span leak breaches its gauge rule and recovers the moment the
/// spans close — no window to wait out, so the full 200 → 503 → 200 cycle
/// is observable deterministically.
#[test]
fn healthz_flips_on_open_span_leak_and_recovers() {
    let telemetry = Telemetry::enabled();
    let series = TimeSeries::new(telemetry.clone());
    let server = HarmonyServer::start_with_config(ServerConfig {
        telemetry: telemetry.clone(),
        timeseries: Some(series.clone()),
        slo_rules: parse_rules(&["open_spans<3@10".to_string()]).unwrap(),
        ..Default::default()
    });
    let observe = server.observe("127.0.0.1:0").unwrap();
    let addr = observe.addr().to_string();

    // Healthy baseline: no spans open.
    series.sample_now();
    let (code, doc) = health(&addr);
    assert_eq!(code, 200, "{doc:?}");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(
        verdict(&doc, "open_spans")
            .get("reason")
            .and_then(Value::as_str),
        Some("ok")
    );

    // Injected fault: leak five measurement spans, breaching `< 3`.
    let spans: Vec<_> = (0..5)
        .map(|i| telemetry.span_begin(SpanKind::Measure, i, "leak", i as u64))
        .collect();
    series.sample_now();
    let (code, doc) = health(&addr);
    assert_eq!(code, 503, "{doc:?}");
    assert_eq!(doc.get("status").and_then(Value::as_str), Some("breached"));
    let v = verdict(&doc, "open_spans");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("breach"));
    assert_eq!(v.get("value").and_then(Value::as_f64), Some(5.0));

    // Clear the fault: close every span; the next sample recovers.
    for s in spans {
        telemetry.span_end(s);
    }
    series.sample_now();
    let (code, doc) = health(&addr);
    assert_eq!(code, 200, "{doc:?}");

    observe.stop();
    server.shutdown();
}

/// A latency-percentile rule breaches on slow injected RTT observations
/// and recovers once the rule's window slides past them.
#[test]
fn healthz_latency_rule_breaches_then_drains() {
    let telemetry = Telemetry::enabled();
    let series = TimeSeries::new(telemetry.clone());
    let server = HarmonyServer::start_with_config(ServerConfig {
        telemetry: telemetry.clone(),
        timeseries: Some(series.clone()),
        slo_rules: parse_rules(&["report_batch_rtt_p99<0.05@1".to_string()]).unwrap(),
        ..Default::default()
    });
    let observe = server.observe("127.0.0.1:0").unwrap();
    let addr = observe.addr().to_string();

    // Fresh series: one sample, no observations — insufficient data is
    // healthy (a booting server must not 503).
    series.sample_now();
    let (code, doc) = health(&addr);
    assert_eq!(code, 200, "{doc:?}");
    assert_eq!(
        verdict(&doc, "report_batch_rtt_p99")
            .get("reason")
            .and_then(Value::as_str),
        Some("insufficient_data")
    );

    // Inject slow reports: 2s RTTs blow through the 50ms objective.
    for _ in 0..10 {
        telemetry.observe(Latency::ReportBatchRtt, Duration::from_secs(2));
    }
    std::thread::sleep(Duration::from_millis(20));
    series.sample_now();
    let (code, doc) = health(&addr);
    assert_eq!(code, 503, "{doc:?}");
    let v = verdict(&doc, "report_batch_rtt_p99");
    assert_eq!(v.get("reason").and_then(Value::as_str), Some("breach"));
    assert!(
        v.get("value").and_then(Value::as_f64).unwrap() > 0.05,
        "{v:?}"
    );

    // Recovery: after the 1s window slides past the burst, the windowed
    // delta holds no observations and the rule stops failing.
    std::thread::sleep(Duration::from_millis(1200));
    series.sample_now();
    std::thread::sleep(Duration::from_millis(20));
    series.sample_now();
    let (code, doc) = health(&addr);
    assert_eq!(code, 200, "{doc:?}");

    observe.stop();
    server.shutdown();
}

/// Without a time-series attached, `/healthz` reports healthy with a note
/// instead of failing — health checking is opt-in per server.
#[test]
fn healthz_without_timeseries_stays_up() {
    let server = HarmonyServer::start_with_config(ServerConfig {
        telemetry: Telemetry::enabled(),
        ..Default::default()
    });
    let observe = server.observe("127.0.0.1:0").unwrap();
    let (code, doc) = health(&observe.addr().to_string());
    assert_eq!(code, 200);
    assert_eq!(doc.get("healthy").and_then(Value::as_bool), Some(true));
    assert!(doc.get("note").is_some(), "{doc:?}");
    observe.stop();
    server.shutdown();
}

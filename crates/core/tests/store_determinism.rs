//! Property tests: a warm-started run answered from the persistent
//! performance store is bit-identical to the cold run that populated it —
//! even when the cold run was measured by a *faulty* worker pool.
//!
//! This is the store's correctness contract: a stored cost is
//! indistinguishable from a fresh measurement of the same configuration,
//! so serving from the database can change how long a campaign takes but
//! never what it explores or concludes. The fault half matters because the
//! store records first-reported costs under requeues, duplicates, and
//! stragglers; whatever mess produced the database, replaying it must
//! reproduce the fault-free trajectory.

use ah_clustersim::{FaultKind, FaultPlan};
use ah_core::prelude::*;
use ah_core::server::protocol::TrialReport;
use ah_core::server::{HarmonyClient, ServerConfig};
use ah_core::store::SharedStore;
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_store(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ah-store-det-{}-{}-{tag}.store",
        std::process::id(),
        STORE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn declare(c: &HarmonyClient) {
    c.add_param(Param::int("x", 0, 80, 1)).unwrap();
    c.add_param(Param::int("y", -30, 30, 1)).unwrap();
}

fn objective(cfg: &Configuration) -> f64 {
    let x = cfg.int("x").expect("x") as f64;
    let y = cfg.int("y").expect("y") as f64;
    (x - 52.0).powi(2) * 0.5 + (y - 7.0).powi(2)
}

fn options(seed: u64) -> SessionOptions {
    SessionOptions {
        max_evaluations: 40,
        seed,
        ..Default::default()
    }
}

fn store_server(store: &SharedStore) -> HarmonyServer {
    HarmonyServer::start_with_config(ServerConfig {
        shards: 2,
        store: Some(store.clone()),
        ..Default::default()
    })
}

/// What determinism means here: the cost sequence in proposal order plus
/// the best point. Deliberately *not* the serialized `History` — cached
/// flags and cumulative time are supposed to differ between a measured and
/// a served run; the search trajectory is not.
type Trajectory = (Vec<(usize, u64)>, Vec<i64>, u64);

fn trajectory(c: &HarmonyClient) -> Trajectory {
    let (h, finished) = c.history().unwrap();
    assert!(finished);
    let (best_config, best_cost) = c.best().unwrap().expect("nonempty");
    (
        h.evaluations()
            .iter()
            .map(|e| (e.iteration, e.cost.to_bits()))
            .collect(),
        best_config.cache_key(),
        best_cost.to_bits(),
    )
}

/// Ground truth: one client, no faults, no store.
fn serial_reference(strategy: StrategyKind, seed: u64) -> Trajectory {
    let server = HarmonyServer::start_with(1);
    let c = server.connect("det").unwrap();
    declare(&c);
    c.seal(options(seed), strategy).unwrap();
    loop {
        let f = c.fetch().unwrap();
        if f.finished {
            break;
        }
        c.report(objective(&f.config)).unwrap();
    }
    let t = trajectory(&c);
    server.shutdown();
    t
}

/// A store-backed run driven serially; returns the trajectory and whether
/// every history row was served from the store.
fn store_run(strategy: StrategyKind, seed: u64, store: &SharedStore) -> (Trajectory, bool) {
    let server = store_server(store);
    let c = server.connect("det").unwrap();
    declare(&c);
    c.seal(options(seed), strategy).unwrap();
    loop {
        let f = c.fetch().unwrap();
        if f.finished {
            break;
        }
        c.report(objective(&f.config)).unwrap();
    }
    let (h, _) = c.history().unwrap();
    let all_cached = h.evaluations().iter().all(|e| e.cached);
    let t = trajectory(&c);
    server.shutdown();
    store.flush().unwrap();
    (t, all_cached)
}

/// A straggler's report, parked until `ticks` driver rounds have passed.
struct Held {
    ticks: u32,
    report: TrialReport,
}

/// The cold run at its worst: a faulty worker pool (crashes, lost reports,
/// stragglers — same driver as the fault-tolerance suite) measuring into
/// the store.
fn faulty_store_run(
    strategy: StrategyKind,
    seed: u64,
    plan: &FaultPlan,
    workers: usize,
    store: &SharedStore,
) -> Trajectory {
    let server = store_server(store);
    let founder = server.connect("det").unwrap();
    declare(&founder);
    founder.seal(options(seed), strategy).unwrap();
    let session = founder.session_id();
    let mut members: Vec<HarmonyClient> = (0..workers)
        .map(|_| server.attach(session).unwrap())
        .collect();

    let mut held: Vec<Held> = Vec::new();
    let mut faulted: HashSet<usize> = HashSet::new();
    let mut finished = false;
    let mut rounds = 0u32;
    while !finished {
        rounds += 1;
        assert!(rounds < 10_000, "faulty driver is not converging");
        for h in held.iter_mut() {
            h.ticks -= 1;
        }
        let mut due = Vec::new();
        held.retain_mut(|h| {
            if h.ticks == 0 {
                due.push(h.report.clone());
                false
            } else {
                true
            }
        });
        if !due.is_empty() {
            founder.report_batch(due).unwrap();
        }
        for member in members.iter_mut() {
            let (trials, fin) = member.fetch_batch(1).unwrap();
            if fin {
                finished = true;
                break;
            }
            let Some(t) = trials.into_iter().next() else {
                continue;
            };
            if held.iter().any(|h| h.report.iteration == t.iteration) {
                continue;
            }
            let report = TrialReport {
                iteration: t.iteration,
                cost: objective(&t.config),
                wall_time: objective(&t.config),
            };
            let fault = if faulted.insert(t.iteration) {
                plan.at(t.iteration as u64)
            } else {
                FaultKind::None
            };
            match fault {
                FaultKind::None => member.report_batch(vec![report]).unwrap(),
                FaultKind::Crash => {
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::LostReport => {
                    held.push(Held { ticks: 4, report });
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::Straggler { factor } => {
                    held.push(Held {
                        ticks: (factor as u32).clamp(2, 8),
                        report,
                    });
                }
            }
        }
    }
    let t = trajectory(&founder);
    server.shutdown();
    store.flush().unwrap();
    t
}

fn check(strategy: StrategyKind, seed: u64, fault_seed: u64) {
    let want = serial_reference(strategy.clone(), seed);
    let path = temp_store("prop");
    let store = SharedStore::open(&path).unwrap();

    // Cold, store-backed, measured by a faulty pool: same trajectory.
    let plan = FaultPlan::new(fault_seed, 0.15, 0.10, 0.20);
    let cold = faulty_store_run(strategy.clone(), seed, &plan, 3, &store);
    assert_eq!(cold, want, "{strategy:?} cold store run diverged");

    // Warm: the whole campaign is answered from the database the faulty
    // run left behind, and the trajectory is still bit-identical.
    let (warm, all_cached) = store_run(strategy.clone(), seed, &store);
    assert_eq!(warm, want, "{strategy:?} warm run diverged");
    assert!(all_cached, "{strategy:?} warm run re-measured something");

    // And a *reopened* store (fresh process state, recovery scan) serves
    // the identical run again.
    drop(store);
    let reopened = SharedStore::open(&path).unwrap();
    let (rewarm, all_cached) = store_run(strategy.clone(), seed, &reopened);
    assert_eq!(rewarm, want, "{strategy:?} reopened-store run diverged");
    assert!(all_cached, "{strategy:?} reopened store missed lookups");
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn warm_runs_replay_cold_runs_for_random(
        seed in 0u64..1_000_000, fs in 0u64..1_000_000
    ) {
        check(StrategyKind::Random, seed, fs);
    }

    #[test]
    fn warm_runs_replay_cold_runs_for_nelder_mead(
        seed in 0u64..1_000_000, fs in 0u64..1_000_000
    ) {
        check(StrategyKind::NelderMead, seed, fs);
    }

    #[test]
    fn warm_runs_replay_cold_runs_for_pro(
        seed in 0u64..1_000_000, fs in 0u64..1_000_000
    ) {
        check(StrategyKind::Pro, seed, fs);
    }
}

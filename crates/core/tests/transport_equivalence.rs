//! Property tests: the nonblocking readiness event loop and the legacy
//! thread-per-connection front-end are *semantically interchangeable* —
//! the same seeded campaign, driven through either transport under the
//! same fault schedule (worker sockets dying mid-iteration, replacements
//! attaching back in), produces the bit-identical tuning trajectory, and
//! both match a fault-free serial in-process run.
//!
//! This is the contract that let the event loop replace the threaded
//! transport as the default: multiplexing is a throughput optimisation,
//! never a behavioural change.

use ah_clustersim::{FaultKind, FaultPlan};
use ah_core::prelude::*;
use ah_core::server::protocol::TrialReport;
use ah_core::server::{ServerConfig, TcpHarmonyClient, TcpHarmonyServer, TcpTransport};
use proptest::prelude::*;

fn objective(cfg: &Configuration) -> f64 {
    let x = cfg.int("x").expect("x") as f64;
    let y = cfg.int("y").expect("y") as f64;
    (x - 52.0).powi(2) * 0.5 + (y - 7.0).powi(2)
}

fn options(seed: u64) -> SessionOptions {
    SessionOptions {
        max_evaluations: 30,
        seed,
        ..Default::default()
    }
}

/// Ground truth: one in-process client, no sockets, no faults.
fn serial_history(strategy: StrategyKind, seed: u64) -> String {
    let server = HarmonyServer::start_with(1);
    let c = server.connect("serial").unwrap();
    c.add_param(Param::int("x", 0, 80, 1)).unwrap();
    c.add_param(Param::int("y", -30, 30, 1)).unwrap();
    c.seal(options(seed), strategy).unwrap();
    loop {
        let f = c.fetch().unwrap();
        if f.finished {
            break;
        }
        c.report(objective(&f.config)).unwrap();
    }
    let (h, finished) = c.history().unwrap();
    assert!(finished);
    server.shutdown();
    serde_json::to_string(&h).unwrap()
}

/// The same campaign over TCP: a founder plus three workers fetching one
/// trial at a time. The fault plan picks iterations whose worker *crashes*
/// — the socket is dropped with no goodbye, the server front-end notices
/// the dead connection and synthesises the `Leave` that requeues the held
/// trial, and a replacement worker attaches to the session.
fn tcp_history(
    transport: TcpTransport,
    strategy: StrategyKind,
    seed: u64,
    plan: &FaultPlan,
) -> String {
    let server = TcpHarmonyServer::bind_with_transport(
        "127.0.0.1:0",
        64,
        ServerConfig::default(),
        transport,
    )
    .expect("bind");
    let addr = server.local_addr();
    let mut founder = TcpHarmonyClient::connect(addr, "equiv").unwrap();
    founder.add_param(Param::int("x", 0, 80, 1)).unwrap();
    founder.add_param(Param::int("y", -30, 30, 1)).unwrap();
    founder.seal(options(seed), strategy).unwrap();
    let session = founder.session_id();
    let mut workers: Vec<TcpHarmonyClient> = (0..3)
        .map(|_| TcpHarmonyClient::attach(addr, session).unwrap())
        .collect();

    let mut crashed = std::collections::HashSet::new();
    let mut finished = false;
    let mut rounds = 0u32;
    while !finished {
        rounds += 1;
        assert!(rounds < 10_000, "tcp driver is not converging");
        for worker in workers.iter_mut() {
            let (trials, fin) = worker.fetch_batch(1).unwrap();
            if fin {
                finished = true;
                break;
            }
            let Some(t) = trials.into_iter().next() else {
                continue; // strategy waiting on an outstanding report
            };
            // Only the *first* attempt at an iteration can crash; the
            // requeued trial is re-measured normally.
            let crash = matches!(plan.at(t.iteration as u64), FaultKind::Crash)
                && crashed.insert(t.iteration);
            if crash {
                // Dead socket, no goodbye: the transport must synthesise
                // the Leave and requeue the held trial.
                let dead =
                    std::mem::replace(worker, TcpHarmonyClient::attach(addr, session).unwrap());
                drop(dead);
            } else {
                worker
                    .report_batch(vec![TrialReport {
                        iteration: t.iteration,
                        cost: objective(&t.config),
                        wall_time: objective(&t.config),
                    }])
                    .unwrap();
            }
        }
    }
    let (h, fin) = founder.history().unwrap();
    assert!(fin);
    founder.close();
    for w in workers {
        w.close();
    }
    server.shutdown();
    serde_json::to_string(&h).unwrap()
}

fn check(strategy: StrategyKind, seed: u64, fault_seed: u64) {
    let plan = FaultPlan::new(fault_seed, 0.2, 0.0, 0.0);
    let want = serial_history(strategy.clone(), seed);
    let event_loop = tcp_history(TcpTransport::default(), strategy.clone(), seed, &plan);
    let threaded = tcp_history(TcpTransport::Threaded, strategy.clone(), seed, &plan);
    assert_eq!(
        event_loop, threaded,
        "{strategy:?} trajectory differs between transports"
    );
    assert_eq!(
        event_loop, want,
        "{strategy:?} TCP trajectory diverged from the serial run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_is_transport_invariant(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::Random, seed, fs);
    }

    #[test]
    fn nelder_mead_is_transport_invariant(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::NelderMead, seed, fs);
    }

    #[test]
    fn annealing_is_transport_invariant(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::Annealing, seed, fs);
    }

    #[test]
    fn genetic_is_transport_invariant(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::Genetic, seed, fs);
    }

    #[test]
    fn surrogate_is_transport_invariant(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        // Surrogate interleaves model-argmin proposals with its fallback
        // inner strategy; both sides must replay identically over sockets.
        check(StrategyKind::Surrogate, seed, fs);
    }
}

#[test]
fn pro_batches_are_transport_invariant() {
    // PRO serves whole rounds through FetchBatch — the largest frames the
    // protocol produces, a good workout for the incremental decoder and
    // the event loop's write buffering.
    let want = serial_history(StrategyKind::Pro, 4242);
    let plan = FaultPlan::new(99, 0.2, 0.0, 0.0);
    let event_loop = tcp_history(TcpTransport::default(), StrategyKind::Pro, 4242, &plan);
    let threaded = tcp_history(TcpTransport::Threaded, StrategyKind::Pro, 4242, &plan);
    assert_eq!(event_loop, threaded);
    assert_eq!(event_loop, want);
}

//! HTTP conformance of the observe plane: correct framing on error
//! responses, pipelined requests on one keep-alive connection, and
//! concurrent scrapes while a campaign is actively mutating the metrics
//! they read.

use ah_core::param::Param;
use ah_core::server::protocol::{StrategyKind, TrialReport};
use ah_core::server::{HarmonyServer, ServerConfig};
use ah_core::session::SessionOptions;
use ah_core::telemetry::timeseries::TimeSeries;
use ah_core::telemetry::{validate_exposition, Telemetry};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Read exactly one HTTP/1.1 response off the stream, framed by its
/// `Content-Length`. Returns (status code, headers, body).
fn read_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response header byte");
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("header is UTF-8");
    let code: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header present");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("body bytes");
    (code, head, body)
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect observe plane");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn start_server() -> (HarmonyServer, ah_core::server::ObserveHandle) {
    let telemetry = Telemetry::enabled();
    let series = TimeSeries::new(telemetry.clone());
    series.sample_now();
    let server = HarmonyServer::start_with_config(ServerConfig {
        telemetry,
        timeseries: Some(series),
        slo_rules: ah_core::telemetry::slo::default_rules(),
        ..Default::default()
    });
    let observe = server.observe("127.0.0.1:0").unwrap();
    (server, observe)
}

/// Unknown paths 404 and unsupported methods 405, each with a
/// `Content-Length` that matches the body byte-for-byte so keep-alive
/// clients never lose framing.
#[test]
fn errors_are_framed_with_exact_content_length() {
    let (server, observe) = start_server();
    let addr = observe.addr().to_string();

    let mut stream = connect(&addr);
    write!(stream, "GET /no-such-endpoint HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (code, head, body) = read_response(&mut stream);
    assert_eq!(code, 404);
    assert!(!body.is_empty(), "404 carries an explanatory body");
    assert!(head.contains("Connection: keep-alive"), "{head}");
    // The connection survives the 404: framing held, so a follow-up
    // request on the same socket still works.
    write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (code, _, body) = read_response(&mut stream);
    assert_eq!(code, 200, "{}", String::from_utf8_lossy(&body));

    let mut stream = connect(&addr);
    write!(
        stream,
        "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
    )
    .unwrap();
    let (code, head, body) = read_response(&mut stream);
    assert_eq!(code, 405);
    assert!(!body.is_empty());
    // Non-GET requests may carry bodies the server never parses, so the
    // server must close rather than misread the body as the next request.
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "connection closed after 405");

    observe.stop();
    server.shutdown();
}

/// Several requests written back-to-back in a single write are answered
/// in order on the same connection, each response individually framed.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let (server, observe) = start_server();
    let addr = observe.addr().to_string();

    let mut stream = connect(&addr);
    let pipeline = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n\
                    GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n\
                    GET /status HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    stream.write_all(pipeline.as_bytes()).unwrap();

    let (code, _, body) = read_response(&mut stream);
    assert_eq!(code, 200);
    let health = String::from_utf8(body).unwrap();
    assert!(health.contains("\"healthy\""), "{health}");

    let (code, _, body) = read_response(&mut stream);
    assert_eq!(code, 200);
    let metrics = String::from_utf8(body).unwrap();
    validate_exposition(&metrics).expect("pipelined /metrics is conformant");

    let (code, head, body) = read_response(&mut stream);
    assert_eq!(code, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let status = String::from_utf8(body).unwrap();
    assert!(status.contains("\"sessions\""), "{status}");

    observe.stop();
    server.shutdown();
}

/// Concurrent scrapes during an active campaign: every response arrives
/// whole and conformant while workers mutate the counters being read.
#[test]
fn concurrent_scrapes_survive_an_active_campaign() {
    let (server, observe) = start_server();
    let addr = observe.addr().to_string();

    let client = server.connect("scrape-under-load").unwrap();
    client.add_param(Param::int("x", 0, 1_000_000, 1)).unwrap();
    client
        .seal(
            SessionOptions {
                max_evaluations: 400,
                max_cached_replays: 400,
                seed: 11,
                ..Default::default()
            },
            StrategyKind::Random,
        )
        .unwrap();

    std::thread::scope(|s| {
        // The campaign: fetch/report until the session finishes.
        s.spawn(|| loop {
            let (trials, finished) = client.fetch_batch(8).unwrap();
            if finished {
                break;
            }
            let reports: Vec<TrialReport> = trials
                .iter()
                .map(|t| TrialReport {
                    iteration: t.iteration,
                    cost: t.config.int("x").unwrap() as f64,
                    wall_time: 0.0,
                })
                .collect();
            client.report_batch(reports).unwrap();
        });
        // Scrapers: four threads, several endpoints each, all mid-flight.
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10 {
                    let mut stream = connect(&addr);
                    write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
                    let (code, _, body) = read_response(&mut stream);
                    assert_eq!(code, 200);
                    let text = String::from_utf8(body).unwrap();
                    validate_exposition(&text).expect("mid-campaign scrape is conformant");

                    write!(stream, "GET /status HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
                    let (code, _, _) = read_response(&mut stream);
                    assert_eq!(code, 200);

                    write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
                    let (code, _, _) = read_response(&mut stream);
                    assert!(code == 200 || code == 503, "healthz answered {code}");
                }
            });
        }
    });

    observe.stop();
    server.shutdown();
}

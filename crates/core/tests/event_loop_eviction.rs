//! Integration test: the event loop's idle-timeout reaper. A worker that
//! goes silent while holding trials is indistinguishable from a hung node
//! on the paper's clusters — the loop must reap its connection, the
//! synthesised `Leave` must requeue the held trials through the existing
//! eviction path, and the churn must be visible in telemetry.

use ah_core::prelude::*;
use ah_core::server::protocol::TrialReport;
use ah_core::server::{
    EventLoopConfig, ServerConfig, TcpHarmonyClient, TcpHarmonyServer, TcpTransport,
};
use ah_core::telemetry::{Counter, Telemetry};
use std::time::Duration;

#[test]
fn silent_connection_is_reaped_and_its_trials_requeue() {
    let telemetry = Telemetry::enabled();
    let server = TcpHarmonyServer::bind_with_transport(
        "127.0.0.1:0",
        64,
        ServerConfig {
            telemetry: telemetry.clone(),
            ..Default::default()
        },
        TcpTransport::EventLoop(EventLoopConfig {
            idle_timeout: Some(Duration::from_millis(80)),
            ..Default::default()
        }),
    )
    .expect("bind");
    let addr = server.local_addr();

    let mut founder = TcpHarmonyClient::connect(addr, "evict").unwrap();
    founder.add_param(Param::int("x", 0, 100, 1)).unwrap();
    founder
        .seal(
            SessionOptions {
                max_evaluations: 6,
                seed: 8,
                ..Default::default()
            },
            StrategyKind::Random,
        )
        .unwrap();
    let session = founder.session_id();

    // The victim fetches three trials, then goes completely silent — the
    // socket stays open (it is *not* dropped), so only the idle timeout
    // can get rid of it.
    let mut silent = TcpHarmonyClient::attach(addr, session).unwrap();
    let (held, _) = silent.fetch_batch(3).unwrap();
    assert_eq!(held.len(), 3);
    let held_iters: Vec<usize> = held.iter().map(|t| t.iteration).collect();

    // The founder keeps polling (which keeps its own connection warm) and
    // must eventually inherit exactly the requeued trials.
    let mut inherited = Vec::new();
    let mut stash = Vec::new();
    for _ in 0..400 {
        let (trials, _) = founder.fetch_batch(6).unwrap();
        for t in trials {
            if held_iters.contains(&t.iteration) {
                inherited.push(t);
            } else {
                stash.push(t);
            }
        }
        if inherited.len() == held_iters.len() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut got: Vec<usize> = inherited.iter().map(|t| t.iteration).collect();
    got.sort_unstable();
    let mut want = held_iters.clone();
    want.sort_unstable();
    assert_eq!(got, want, "requeued trials did not reach the survivor");
    assert_eq!(
        telemetry.counter(Counter::ConnectionsEvictedIdle),
        1,
        "exactly the silent connection must be reaped"
    );

    // The campaign still completes cleanly from here.
    let reports: Vec<TrialReport> = inherited
        .iter()
        .chain(stash.iter())
        .map(|t| TrialReport {
            iteration: t.iteration,
            cost: t.config.int("x").unwrap() as f64,
            wall_time: 0.0,
        })
        .collect();
    founder.report_batch(reports).unwrap();
    loop {
        let (trials, finished) = founder.fetch_batch(6).unwrap();
        if finished {
            break;
        }
        let reports = trials
            .iter()
            .map(|t| TrialReport {
                iteration: t.iteration,
                cost: t.config.int("x").unwrap() as f64,
                wall_time: 0.0,
            })
            .collect();
        founder.report_batch(reports).unwrap();
    }
    let (h, finished) = founder.history().unwrap();
    assert!(finished);
    assert_eq!(h.evaluations().iter().filter(|e| !e.cached).count(), 6);

    // The victim's socket was closed server-side; using it now surfaces a
    // disconnect (its client reconnects via Attach under a new id).
    let _ = silent.heartbeat();
    founder.close();
    server.shutdown();
}

//! Property tests: a shared tuning session driven by a *faulty* worker
//! pool — crashes, lost reports, stragglers, with eviction and requeue —
//! produces the bit-identical trajectory of a fault-free serial client.
//!
//! This is the fault-tolerance contract of the server: costs are
//! deterministic functions of the configuration, trials are requeued by
//! iteration token, and the session flushes reports in proposal order, so
//! *who* measures a trial, *how many times* it is measured, and *when* the
//! report lands cannot change what the search explores.

use ah_clustersim::{FaultKind, FaultPlan};
use ah_core::prelude::*;
use ah_core::server::protocol::TrialReport;
use ah_core::server::HarmonyClient;
use proptest::prelude::*;
use std::collections::HashSet;

fn declare(c: &HarmonyClient) {
    c.add_param(Param::int("x", 0, 80, 1)).unwrap();
    c.add_param(Param::int("y", -30, 30, 1)).unwrap();
}

fn objective(cfg: &Configuration) -> f64 {
    let x = cfg.int("x").expect("x") as f64;
    let y = cfg.int("y").expect("y") as f64;
    (x - 52.0).powi(2) * 0.5 + (y - 7.0).powi(2)
}

fn options(seed: u64) -> SessionOptions {
    SessionOptions {
        max_evaluations: 40,
        seed,
        ..Default::default()
    }
}

/// Ground truth: one client, no faults, strictly serial fetch/report.
fn serial_history(strategy: StrategyKind, seed: u64) -> String {
    let server = HarmonyServer::start_with(1);
    let c = server.connect("serial").unwrap();
    declare(&c);
    c.seal(options(seed), strategy).unwrap();
    loop {
        let f = c.fetch().unwrap();
        if f.finished {
            break;
        }
        c.report(objective(&f.config)).unwrap();
    }
    let (h, finished) = c.history().unwrap();
    assert!(finished);
    server.shutdown();
    serde_json::to_string(&h).unwrap()
}

/// A straggler's report, parked until `ticks` driver rounds have passed.
struct Held {
    ticks: u32,
    report: TrialReport,
}

/// The same search, tuned by a pool of faulty workers. Each trial's fate is
/// decided by the fault plan at its iteration token (first attempt only —
/// a requeued trial is re-measured normally, like a fresh worker would):
///
/// * `Crash` — the worker departs without reporting; a replacement joins.
///   The trial is requeued and re-measured by whoever claims it.
/// * `LostReport` — the measurement finishes but never reaches the server;
///   the worker departs (its connection is gone as far as the server can
///   tell) and the stale report surfaces later as a duplicate.
/// * `Straggler` — the report arrives, but several rounds late and out of
///   order with everyone else's.
fn faulty_history(strategy: StrategyKind, seed: u64, plan: FaultPlan, workers: usize) -> String {
    let server = HarmonyServer::start_with(2);
    let founder = server.connect("faulty").unwrap();
    declare(&founder);
    founder.seal(options(seed), strategy).unwrap();
    let session = founder.session_id();
    let mut members: Vec<HarmonyClient> = (0..workers)
        .map(|_| server.attach(session).unwrap())
        .collect();

    let mut held: Vec<Held> = Vec::new();
    let mut faulted: HashSet<usize> = HashSet::new();
    let mut finished = false;
    let mut rounds = 0u32;
    while !finished {
        rounds += 1;
        assert!(rounds < 10_000, "faulty driver is not converging");
        // Deliver straggler/lost reports whose delay expired. The founder
        // relays them: reports are matched by iteration token, not sender.
        for h in held.iter_mut() {
            h.ticks -= 1;
        }
        let mut due = Vec::new();
        held.retain_mut(|h| {
            if h.ticks == 0 {
                due.push(h.report.clone());
                false
            } else {
                true
            }
        });
        if !due.is_empty() {
            founder.report_batch(due).unwrap();
        }
        for member in members.iter_mut() {
            let (trials, fin) = member.fetch_batch(1).unwrap();
            if fin {
                finished = true;
                break;
            }
            let Some(t) = trials.into_iter().next() else {
                // Strategy is waiting on an outstanding report.
                continue;
            };
            if held.iter().any(|h| h.report.iteration == t.iteration) {
                // This worker is still "measuring" its straggling trial
                // (the server re-serves it until reported); skip its turn.
                continue;
            }
            let report = TrialReport {
                iteration: t.iteration,
                cost: objective(&t.config),
                wall_time: objective(&t.config),
            };
            let fault = if faulted.insert(t.iteration) {
                plan.at(t.iteration as u64)
            } else {
                FaultKind::None
            };
            match fault {
                FaultKind::None => member.report_batch(vec![report]).unwrap(),
                FaultKind::Crash => {
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::LostReport => {
                    held.push(Held { ticks: 4, report });
                    member.leave().unwrap();
                    *member = server.attach(session).unwrap();
                }
                FaultKind::Straggler { factor } => {
                    held.push(Held {
                        ticks: (factor as u32).clamp(2, 8),
                        report,
                    });
                }
            }
        }
    }
    let (h, finished) = founder.history().unwrap();
    assert!(finished);
    server.shutdown();
    serde_json::to_string(&h).unwrap()
}

fn check(strategy: StrategyKind, seed: u64, fault_seed: u64) {
    let plan = FaultPlan::new(fault_seed, 0.15, 0.10, 0.20);
    let want = serial_history(strategy.clone(), seed);
    let got = faulty_history(strategy.clone(), seed, plan, 3);
    assert_eq!(got, want, "{strategy:?} trajectory diverged under faults");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_survives_any_fault_schedule(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::Random, seed, fs);
    }

    #[test]
    fn nelder_mead_survives_any_fault_schedule(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::NelderMead, seed, fs);
    }

    #[test]
    fn pro_survives_any_fault_schedule(seed in 0u64..1_000_000, fs in 0u64..1_000_000) {
        check(StrategyKind::Pro, seed, fs);
    }
}

/// Edge case: a worker dies holding a *whole PRO round* fetched in one
/// batch. The round must be requeued wholesale and the trajectory still
/// match the serial run.
#[test]
fn crash_holding_a_full_batch_requeues_the_round() {
    let want = serial_history(StrategyKind::Pro, 77);
    let server = HarmonyServer::start_with(1);
    let founder = server.connect("batchy").unwrap();
    declare(&founder);
    founder.seal(options(77), StrategyKind::Pro).unwrap();
    let worker = server.attach(founder.session_id()).unwrap();
    let (round, _) = worker.fetch_batch(16).unwrap();
    assert!(round.len() > 2, "expected a multi-candidate PRO round");
    worker.leave().unwrap(); // dies holding every candidate
    loop {
        let (trials, finished) = founder.fetch_batch(16).unwrap();
        if finished {
            break;
        }
        let reports = trials
            .iter()
            .map(|t| TrialReport {
                iteration: t.iteration,
                cost: objective(&t.config),
                wall_time: objective(&t.config),
            })
            .collect();
        founder.report_batch(reports).unwrap();
    }
    let (h, _) = founder.history().unwrap();
    assert_eq!(serde_json::to_string(&h).unwrap(), want);
    server.shutdown();
}

/// Edge case: a departed worker's report arrives *after* its trials were
/// requeued and re-measured — the duplicate batch must be ignored, not
/// double-applied or treated as a protocol violation.
#[test]
fn duplicate_report_batch_after_eviction_is_ignored() {
    let want = serial_history(StrategyKind::Random, 13);
    let server = HarmonyServer::start_with(1);
    let founder = server.connect("dupes").unwrap();
    declare(&founder);
    founder.seal(options(13), StrategyKind::Random).unwrap();
    let worker = server.attach(founder.session_id()).unwrap();
    let (batch, _) = worker.fetch_batch(3).unwrap();
    assert_eq!(batch.len(), 3);
    let stale: Vec<TrialReport> = batch
        .iter()
        .map(|t| TrialReport {
            iteration: t.iteration,
            cost: objective(&t.config),
            wall_time: objective(&t.config),
        })
        .collect();
    worker.leave().unwrap(); // requeues the 3 trials
                             // Founder re-measures everything, including the requeued 3.
    for _ in 0..3 {
        let (trials, _) = founder.fetch_batch(1).unwrap();
        let t = &trials[0];
        founder
            .report_batch(vec![TrialReport {
                iteration: t.iteration,
                cost: objective(&t.config),
                wall_time: objective(&t.config),
            }])
            .unwrap();
    }
    // The dead worker's reports finally "arrive" (relayed via a member):
    // all three are stale duplicates now and must be dropped silently.
    founder.report_batch(stale).unwrap();
    loop {
        let (trials, finished) = founder.fetch_batch(4).unwrap();
        if finished {
            break;
        }
        let reports = trials
            .iter()
            .map(|t| TrialReport {
                iteration: t.iteration,
                cost: objective(&t.config),
                wall_time: objective(&t.config),
            })
            .collect();
        founder.report_batch(reports).unwrap();
    }
    let (h, _) = founder.history().unwrap();
    assert_eq!(serde_json::to_string(&h).unwrap(), want);
    server.shutdown();
}

//! Property tests for the federation merge algebra.
//!
//! Anti-entropy only converges if merging is a semilattice join: merging
//! the same peer twice must be a no-op (idempotent), the order two fleets
//! sync in must not matter (commutative/associative), and a peer's log
//! arriving in shuffled or torn batches must land on the same live store
//! as one clean pull. Where two servers measured the same
//! `(app, fingerprint, key)` independently, the local first write wins —
//! deterministically, so replaying any merge order keeps a server's
//! answers stable.

use ah_core::space::SearchSpace;
use ah_core::store::{PerfStore, StoreRecord};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_store(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ah-merge-prop-{}-{}-{tag}.store",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn space() -> SearchSpace {
    SearchSpace::builder()
        .int("x", 0, 63, 1)
        .int("y", 0, 63, 1)
        .build()
        .unwrap()
}

/// Deterministic cost, a pure function of the key: two servers that both
/// measured a configuration agree, so merges in any order must commute.
fn cost_of(key: (i64, i64)) -> f64 {
    (key.0 * 100 + key.1) as f64 + 0.25
}

fn record(key: (i64, i64), cost: f64) -> StoreRecord {
    let cfg = space().project(&[key.0 as f64, key.1 as f64]);
    StoreRecord::new("merge-prop", 7, cfg, cost, cost)
}

fn store_with(tag: &str, keys: &[(i64, i64)]) -> PerfStore {
    let mut s = PerfStore::open(temp_store(tag)).unwrap();
    for &k in keys {
        s.insert(record(k, cost_of(k))).unwrap();
    }
    s
}

/// The live mapping a store serves: cache key → first-recorded cost bits.
fn live_map(store: &PerfStore) -> BTreeMap<Vec<i64>, u64> {
    store
        .live_records()
        .iter()
        .map(|r| (r.config.cache_key(), r.cost_bits))
        .collect()
}

/// Keys packed as `x * 64 + y` so the vendored strategy surface (plain
/// integer ranges) can generate them; [`unpack`] splits them back out.
fn key_strategy() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..4096, 0..40)
}

fn unpack(packed: &[i64]) -> Vec<(i64, i64)> {
    packed.iter().map(|&k| (k / 64, k % 64)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn merge_is_idempotent(a in key_strategy(), b in key_strategy()) {
        let (a, b) = (unpack(&a), unpack(&b));
        let mut dst = store_with("idem-dst", &a);
        let peer = store_with("idem-peer", &b);
        dst.merge_from(&peer).unwrap();
        let once = live_map(&dst);
        let len_once = dst.len();
        let again = dst.merge_from(&peer).unwrap();
        // A re-merge must append nothing.
        prop_assert_eq!(again.merged, 0);
        prop_assert_eq!(dst.len(), len_once);
        prop_assert_eq!(live_map(&dst), once);
    }

    #[test]
    fn merge_is_commutative_and_associative(
        a in key_strategy(),
        b in key_strategy(),
        c in key_strategy(),
    ) {
        let (a, b, c) = (unpack(&a), unpack(&b), unpack(&c));
        // With agreeing costs, every grouping and order of the three
        // fleets' stores converges to the identical live mapping.
        let orders: Vec<[&[(i64, i64)]; 3]> = vec![
            [&a, &b, &c],
            [&c, &b, &a],
            [&b, &a, &c],
        ];
        let mut maps = Vec::new();
        for (i, order) in orders.iter().enumerate() {
            let mut dst = store_with(&format!("comm-{i}"), order[0]);
            dst.merge_from(&store_with(&format!("comm-{i}-1"), order[1])).unwrap();
            dst.merge_from(&store_with(&format!("comm-{i}-2"), order[2])).unwrap();
            maps.push(live_map(&dst));
        }
        // Associativity: pre-merge (b ⊕ c), then fold into a.
        let mut bc = store_with("assoc-bc", &b);
        bc.merge_from(&store_with("assoc-c", &c)).unwrap();
        let mut grouped = store_with("assoc-a", &a);
        grouped.merge_from(&bc).unwrap();
        maps.push(live_map(&grouped));
        for m in &maps[1..] {
            prop_assert_eq!(m, &maps[0]);
        }
    }

    #[test]
    fn shuffled_batches_converge_to_one_clean_pull(
        keys in key_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let keys = unpack(&keys);
        let mut records: Vec<StoreRecord> =
            keys.iter().map(|&k| record(k, cost_of(k))).collect();
        // Deterministic Fisher-Yates off a splitmix-style stream.
        let mut state = seed | 1;
        for i in (1..records.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            records.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut clean = PerfStore::open(temp_store("shuffle-clean")).unwrap();
        clean
            .merge_records(keys.iter().map(|&k| record(k, cost_of(k))).collect())
            .unwrap();
        let mut chunked = PerfStore::open(temp_store("shuffle-chunked")).unwrap();
        for chunk in records.chunks(3) {
            chunked.merge_records(chunk.to_vec()).unwrap();
        }
        prop_assert_eq!(live_map(&chunked), live_map(&clean));
    }

    #[test]
    fn conflicting_costs_resolve_first_write_wins(
        keys in key_strategy(),
        delta in 1.0f64..100.0,
    ) {
        let keys = unpack(&keys);
        let mut dst = store_with("fww-dst", &keys);
        let mut peer = PerfStore::open(temp_store("fww-peer")).unwrap();
        for &k in &keys {
            peer.insert(record(k, cost_of(k) + delta)).unwrap();
        }
        let before = live_map(&dst);
        let unique = before.len();
        let stats = dst.merge_from(&peer).unwrap();
        // Every peer record collides; the local first write survives.
        prop_assert_eq!(stats.merged, 0);
        prop_assert_eq!(stats.conflicts, unique);
        prop_assert_eq!(live_map(&dst), before.clone());
        // The losing side is deterministic in the other direction too: a
        // store built from the peer keeps the *peer's* costs when dst's
        // records arrive second.
        let mut other = PerfStore::open(temp_store("fww-other")).unwrap();
        other.merge_from(&peer).unwrap();
        let peer_view = live_map(&other);
        other.merge_from(&dst).unwrap();
        prop_assert_eq!(live_map(&other), peer_view);
    }
}

#[test]
fn torn_tail_peer_merges_its_intact_prefix() {
    let path = temp_store("torn-peer");
    let mut peer = PerfStore::open(&path).unwrap();
    for i in 0..5 {
        peer.insert(record((i, i), cost_of((i, i)))).unwrap();
    }
    peer.flush().unwrap();
    drop(peer);
    // Tear the trailing record mid-line, like a crash during replication.
    let blob = std::fs::read(&path).unwrap();
    std::fs::write(&path, &blob[..blob.len() - 7]).unwrap();
    let peer = PerfStore::open(&path).unwrap();
    assert_eq!(peer.live_configs(), 4, "torn tail truncates one record");
    let mut dst = PerfStore::open(temp_store("torn-dst")).unwrap();
    let stats = dst.merge_from(&peer).unwrap();
    assert_eq!(stats.merged, 4);
    assert_eq!(live_map(&dst).len(), 4);
    // The re-measured tail arrives on a later pull and merges cleanly.
    let mut again = PerfStore::open(temp_store("torn-again")).unwrap();
    again.insert(record((4, 4), cost_of((4, 4)))).unwrap();
    dst.merge_from(&again).unwrap();
    assert_eq!(live_map(&dst).len(), 5);
}

//! Property tests: driving a session through `suggest_batch`/`report`
//! produces the *bit-identical* trajectory of the serial
//! `suggest`/`report` loop, for any seed and batch size. This is the
//! contract that lets the server hand a whole round of candidates to a
//! client in one `FetchBatch` frame without changing what gets explored.

use ah_core::prelude::*;
use ah_core::strategy::SearchStrategy;
use proptest::prelude::*;

fn space() -> SearchSpace {
    SearchSpace::builder()
        .int("x", 0, 120, 1)
        .int("y", -20, 20, 1)
        .build()
        .expect("valid space")
}

fn objective(cfg: &Configuration) -> f64 {
    let x = cfg.int("x").expect("x") as f64;
    let y = cfg.int("y").expect("y") as f64;
    (x - 37.0).powi(2) * 0.25 + (y + 3.0).abs()
}

fn session(strategy: Box<dyn SearchStrategy>, seed: u64) -> TuningSession {
    TuningSession::new(
        space(),
        strategy,
        SessionOptions {
            max_evaluations: 60,
            seed,
            ..Default::default()
        },
    )
}

fn run_serial(mut s: TuningSession) -> TuningResult {
    while let Some(trial) = s.suggest() {
        let cost = objective(&trial.config);
        s.report(trial, cost).expect("serial report");
    }
    s.result()
}

fn run_batched(mut s: TuningSession, batch: usize) -> TuningResult {
    loop {
        let trials = s.suggest_batch(batch);
        if trials.is_empty() {
            break;
        }
        for t in trials {
            let cost = objective(&t.config);
            // The session may stop mid-batch; later trials of the batch
            // were dropped and reporting them is a harmless error.
            let _ = s.report(t, cost);
        }
    }
    s.result()
}

fn assert_identical(serial: &TuningResult, batched: &TuningResult, label: &str) {
    assert_eq!(
        serial.history.len(),
        batched.history.len(),
        "{label}: history length"
    );
    for (a, b) in serial
        .history
        .evaluations()
        .iter()
        .zip(batched.history.evaluations())
    {
        assert_eq!(a.iteration, b.iteration, "{label}: iteration");
        assert_eq!(
            a.config.cache_key(),
            b.config.cache_key(),
            "{label}: config at iteration {}",
            a.iteration
        );
        assert_eq!(
            a.cost.to_bits(),
            b.cost.to_bits(),
            "{label}: cost at iteration {}",
            a.iteration
        );
        assert_eq!(a.cached, b.cached, "{label}: cached at {}", a.iteration);
    }
    assert_eq!(
        serial.best_cost.to_bits(),
        batched.best_cost.to_bits(),
        "{label}: best cost"
    );
    assert_eq!(
        serial.best_config.cache_key(),
        batched.best_config.cache_key(),
        "{label}: best config"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random search: proposals depend only on the rng stream, so any
    /// batch size must replay the serial trajectory exactly.
    #[test]
    fn random_batched_equals_serial(seed in 0u64..1_000_000, batch in 1usize..32) {
        let serial = run_serial(session(Box::new(RandomSearch::new()), seed));
        let batched = run_batched(session(Box::new(RandomSearch::new()), seed), batch);
        assert_identical(&serial, &batched, "random");
    }

    /// Nelder–Mead: every proposal depends on the previous result, so
    /// batches degrade to size one — and the trajectory still must not
    /// drift by a bit.
    #[test]
    fn nelder_mead_batched_equals_serial(seed in 0u64..1_000_000, batch in 1usize..32) {
        let serial = run_serial(session(Box::new(NelderMead::default()), seed));
        let batched = run_batched(session(Box::new(NelderMead::default()), seed), batch);
        assert_identical(&serial, &batched, "nelder-mead");
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface this workspace uses — groups,
//! `bench_function` / `bench_with_input`, sample-size / measurement-time /
//! warm-up knobs, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock harness. There is no
//! statistical analysis or HTML report; each benchmark prints min / median /
//! mean per-iteration times to stdout. `measurement_time` is honored as an
//! upper bound so suites finish promptly.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// Work-per-iteration annotation; reported as a rate next to the timing.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id).bench_function("single", f);
        self
    }
}

/// A named set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, storing per-iteration times for the final report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Short warm-up: enough to fault in code paths without stretching
        // suite runtime the way the real harness does.
        let warm_budget = self.warm_up_time.min(Duration::from_millis(200));
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= warm_budget {
                break;
            }
        }

        // Calibrate iterations per sample from a single timed call.
        let once = {
            let t = Instant::now();
            black_box(f());
            t.elapsed()
        };
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (per_sample / once.as_secs_f64().max(1e-9)).clamp(1.0, 1_000_000.0) as u64;

        let deadline = Instant::now() + self.measurement_time;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_secs_f64() * 1e9 / iters as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{group}/{id}: no samples (closure never called iter)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3e} elem/s)", n as f64 / (median / 1e9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3e} B/s)", n as f64 / (median / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{group}/{id}: min {} / median {} / mean {} over {} samples{rate}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); the
            // stand-in runs everything regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("a", 4).id, "a/4");
        assert_eq!(BenchmarkId::from_parameter("8x8").id, "8x8");
    }
}

//! Offline stand-in for the `parking_lot` crate.
//!
//! The real crate is not vendorable in this build environment, so this
//! module provides the subset of its API the workspace uses — `Mutex` and
//! `RwLock` with non-poisoning guards — backed by `std::sync`. A panic while
//! a lock is held simply clears the poison flag on the next acquisition,
//! matching parking_lot's "no poisoning" semantics closely enough for the
//! workloads here.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` method never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock whose acquisition methods never poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

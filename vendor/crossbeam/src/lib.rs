//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses: [`channel`] (MPMC bounded and
//! unbounded channels with disconnect semantics) and [`thread::scope`]
//! (scoped spawning). Implementations lean on `std::sync` primitives; the
//! goal is correct semantics, not lock-free performance — the Harmony
//! server's hot path does strategy math, not channel ping-pong.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when space frees up or all receivers disconnect.
        send_ready: Condvar,
        capacity: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// The sending half of a channel. Clonable; the channel disconnects for
    /// receivers when the last clone drops.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel. Clonable (MPMC); each message is
    /// delivered to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a channel that holds at most `cap` in-flight messages
    /// (`cap == 0` is treated as 1: the stand-in has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            capacity,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .inner
                            .send_ready
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.lock().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.recv_ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive the next message, blocking until one arrives. Fails only
        /// when the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.send_ready.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .recv_ready
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.lock();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.send_ready.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.lock();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.send_ready.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = guard;
            }
        }

        /// Blocking iterator over messages; ends when the channel
        /// disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.lock().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.send_ready.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's `scope(|s| …)` shape, backed by
    //! `std::thread::scope`.

    use std::any::Any;

    /// Handle for spawning scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Passed by reference to every spawned closure, mirroring crossbeam's
    /// nested-spawn capability surface. The workspace's closures take it as
    /// `|_|`; nested spawning is not supported by the stand-in.
    pub struct NestedScope(());

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing [`scope`] call.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            static PLACEHOLDER: NestedScope = NestedScope(());
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&PLACEHOLDER)),
            }
        }
    }

    /// Run `f` with a scope handle; all threads it spawns are joined before
    /// `scope` returns. Always `Ok` here — panics in spawned threads
    /// surface through each handle's `join` (or re-panic if unjoined),
    /// matching how the workspace consumes the crossbeam API.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = unbounded::<usize>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a recv happens
            "sent"
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(t.join().unwrap(), "sent");
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn try_recv_and_timeout() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn scoped_threads_borrow_locals() {
        let data = [1u64, 2, 3, 4];
        let sum: u64 = super::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&v| s.spawn(move |_| v * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 100);
    }
}

//! Offline stand-in for `proptest`.
//!
//! Covers the surface this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, `name in strategy` arguments
//! over numeric ranges and [`collection::vec`], plus [`prop_assert!`] /
//! [`prop_assert_eq!`]. Case generation is deterministic (fixed seed per
//! case index) so failures reproduce; there is no shrinking — the panic
//! message reports the exact inputs instead.

use std::ops::Range;

/// Deterministic generator handed to [`Strategy::sample`] (SplitMix64).
pub struct Gen {
    state: u64,
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1) with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, bound) via widening multiply.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// A source of random test-case values.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn sample(&self, gen: &mut Gen) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, gen: &mut Gen) -> f64 {
        self.start + gen.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, gen: &mut Gen) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Number of elements for [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        fn pick(&self, gen: &mut Gen) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _gen: &mut Gen) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, gen: &mut Gen) -> usize {
            assert!(self.end > self.start, "empty size range");
            self.start + gen.below((self.end - self.start) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length comes from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, gen: &mut Gen) -> Vec<S::Value> {
            let n = self.len.pick(gen);
            (0..n).map(|_| self.element.sample(gen)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is consulted by the stand-in.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

/// Run each property as a deterministic loop of sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default())
            $(#[$meta])* fn $name $($rest)*);
    };
    (@funcs ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                // Per-property base seed: stable across runs, distinct across
                // properties.
                let mut base: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    base = (base ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                for case in 0..config.cases as u64 {
                    let mut gen = $crate::Gen::new(base.wrapping_add(case));
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut gen);)*
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!(
                                "{} = {:?}; ", stringify!($arg), &$arg));
                        )*
                        s
                    };
                    let outcome: ::std::result::Result<(), String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, msg, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a [`proptest!`] body; failures abort only the current case
/// closure (reported with the sampled inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{collection, Gen, Strategy};

    #[test]
    fn gen_is_deterministic() {
        let a: Vec<u64> = {
            let mut g = Gen::new(7);
            (0..4).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Gen::new(7);
            (0..4).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut g = Gen::new(42);
        for _ in 0..1000 {
            let f = (-500.0..500.0f64).sample(&mut g);
            assert!((-500.0..500.0).contains(&f));
            let u = (3usize..9).sample(&mut g);
            assert!((3..9).contains(&u));
            let i = (-5i64..5).sample(&mut g);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut g = Gen::new(1);
        for _ in 0..100 {
            let v = collection::vec(0usize..400, 1..8).sample(&mut g);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 400));
        }
        let fixed = collection::vec(0.0..1.0f64, 4).sample(&mut g);
        assert_eq!(fixed.len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_args_and_asserts(x in 0u64..100, v in collection::vec(0usize..10, 2..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_uses_default(x in 0.0..1.0f64) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }
}

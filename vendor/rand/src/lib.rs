//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the pieces of `rand` the workspace actually uses: a seedable, portable
//! [`rngs::StdRng`], the [`Rng`] extension trait with `gen_range` /
//! `gen_bool` / `gen`, and [`SeedableRng::seed_from_u64`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms
//! and runs, which is all the tuning sessions require (every stochastic
//! choice in a session derives from its seed). The *streams* differ from
//! upstream rand's ChaCha12, so absolute trajectories are not bit-identical
//! to builds using the real crate; all in-repo tests assert
//! convergence/shape properties rather than upstream-exact values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from a [`Rng`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range a uniform value can be drawn from (`lo..hi` or `lo..=hi`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        // Scale 53 random bits over the closed interval.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let idx = uniform_u128_below(rng, span);
                (self.start as i128 + idx as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let idx = uniform_u128_below(rng, span);
                (lo as i128 + idx as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform integer in `[0, n)` via 64-bit widening multiply (n ≤ 2^64).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0 && n <= (1u128 << 64));
    if n == 1 {
        return 0;
    }
    (rng.next_u64() as u128 * n) >> 64
}

/// Extension methods every RNG gets (the `rand::Rng` surface in use).
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }

    /// A value sampled from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from OS entropy; here derived from the system clock, as the
    /// offline build has no `getrandom`. Only used by non-test paths that
    /// want arbitrary (not reproducible) streams.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded via SplitMix64 like the reference implementation recommends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::thread_rng` stand-in: a fresh clock-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let fi = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&fi));
            let i = rng.gen_range(0..13usize);
            assert!(i < 13);
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot fetch crates.io, so this crate provides a
//! self-contained serialization framework with serde's surface *shape*:
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (re-exported from the sibling `serde_derive` proc-macro crate), and the
//! JSON conventions the real serde_json uses (externally tagged enums,
//! structs as objects, tuples as arrays).
//!
//! Instead of serde's zero-copy visitor architecture, everything funnels
//! through an owned [`Value`] tree — dramatically simpler, and fast enough
//! for the Harmony wire protocol and experiment reports this workspace
//! serializes.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered (like serde_json's `preserve_order`).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64`, if an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => u64::try_from(*v).ok(),
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as object entries.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects (by key); `None` on anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays (by index); `None` on anything else.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }
}

/// Shared `Null` for out-of-range `Index` lookups (serde_json convention:
/// indexing never panics on a missing key, it yields `Null`).
static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL_VALUE)
    }
}

/// Deserialization error: a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error from any displayable reason.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the JSON-shaped data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value of this type from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers.
// ---------------------------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic (serde_json's BTreeMap order).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(n) => *n as i128,
                    Value::UInt(n) => *n as i128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}", kind(other)
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("integer {wide} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", kind(v))))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", kind(v))))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", kind(v))))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", kind(v))))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", kind(v))))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", kind(v))))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "float",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Helpers the derive macro's generated code calls. Not part of the public
/// serde API shape; kept in one module so generated code uses stable paths.
pub mod de {
    use super::{kind, Error, Value};

    /// Interpret `v` as the object form of struct `ty`.
    pub fn object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected {ty} object, found {}", kind(v))))
    }

    /// Fetch field `name` from a struct object.
    pub fn field<'a>(obj: &'a [(String, Value)], ty: &str, name: &str) -> Result<&'a Value, Error> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{name}` of {ty}")))
    }

    /// Split an externally tagged enum value into `(variant, payload)`.
    /// Unit variants arrive as a bare string with no payload.
    pub fn variant<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), Error> {
        match v {
            Value::String(s) => Ok((s.as_str(), None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::custom(format!(
                "expected {ty} enum (string or single-key object), found {}",
                kind(other)
            ))),
        }
    }

    /// Interpret a tuple-variant payload of known arity.
    pub fn tuple<'a>(v: &'a Value, ty: &str, arity: usize) -> Result<&'a [Value], Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected {ty} tuple payload")))?;
        if arr.len() != arity {
            return Err(Error::custom(format!(
                "expected {arity} elements for {ty}, found {}",
                arr.len()
            )));
        }
        Ok(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<i64> = vec![1, 2, 3];
        assert_eq!(Vec::<i64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let p = ("x".to_string(), 2.5f64);
        assert_eq!(<(String, f64)>::from_value(&p.to_value()).unwrap(), p);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(usize::from_value(&Value::Int(-1)).is_err());
        assert!(i64::from_value(&Value::Float(1.5)).is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Array(vec![Value::Float(2.0)])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get_index(0))
                .and_then(Value::as_f64),
            Some(2.0)
        );
        assert!(v.get("c").is_none());
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace declares — non-generic structs with named fields
//! and enums whose variants are unit, tuple, or struct-like — without `syn`
//! or `quote` (neither is vendorable offline). The macro walks the item's
//! token trees directly: field *types* never need parsing because generated
//! code lets struct/variant constructors infer them.
//!
//! Generated impls target the sibling `serde` stand-in's data model:
//! structs become ordered objects, enums are externally tagged (`"Unit"`,
//! `{"Newtype": payload}`, `{"Tuple": [..]}`, `{"Struct": {..}}`), matching
//! real serde_json conventions so the wire format stays conventional.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named fields of a struct.
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// One named field and whether `#[serde(default)]` marks it optional on
/// the wire (missing → `Default::default()` when deserializing).
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    /// Tuple variant with the given arity.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<Field>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            let msg = msg.replace('"', "\\\"");
            return format!("compile_error!(\"serde stand-in derive: {msg}\");")
                .parse()
                .expect("compile_error tokens parse");
        }
    };
    let code = match which {
        Which::Serialize => gen_serialize(&item),
        Which::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`, doc comments arrive in this form) and
    // visibility / auxiliary keywords until `struct` or `enum`.
    let kind_kw = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Consume the bracket group of the attribute.
                match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // `pub(crate)` etc: skip a following paren group.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => break s,
                    _ => {} // e.g. `r#...` escapes — not used in this repo
                }
            }
            Some(_) => {}
            None => return Err("expected `struct` or `enum`".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    // Reject generics: none of the workspace's serialized types are generic
    // and the stand-in keeps codegen simple by not supporting them.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` not supported"));
        }
    }
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err(format!("unit/tuple struct `{name}` not supported"))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple struct `{name}` not supported"))
            }
            Some(_) => {}
            None => return Err("expected item body".into()),
        }
    };
    let kind = if kind_kw == "struct" {
        Kind::Struct(parse_named_fields(body)?)
    } else {
        Kind::Enum(parse_variants(body)?)
    };
    Ok(Item { name, kind })
}

/// True when an attribute's bracket group is `serde(default)` (possibly
/// among other serde options).
fn is_serde_default(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|tt| matches!(tt, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Parse `field: Type, ...` from a brace group, returning field names and
/// their `#[serde(default)]` markers.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    let mut pending_default = false;
    loop {
        // Skip attributes and `pub`, remembering a `#[serde(default)]`.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                    Some(TokenTree::Group(g)) => {
                        if is_serde_default(&g) {
                            pending_default = true;
                        }
                    }
                    _ => return Err("malformed field attribute".into()),
                },
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in fields")),
                None => return Ok(fields),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
                None => break,
            }
        }
        fields.push(Field {
            name,
            default: std::mem::take(&mut pending_default),
        });
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                    Some(TokenTree::Group(_)) => {}
                    _ => return Err("malformed variant attribute".into()),
                },
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => return Err(format!("unexpected token `{other}` in enum")),
                None => return Ok(variants),
            }
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                Shape::Struct(fields)
            }
            _ => Shape::Unit,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("discriminant on variant `{name}` not supported"))
            }
            Some(other) => return Err(format!("unexpected token `{other}` after variant")),
            None => {
                variants.push(Variant { name, shape });
                return Ok(variants);
            }
        }
        variants.push(Variant { name, shape });
    }
}

/// Count the comma-separated types of a tuple variant (angle-depth aware).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut count = 0;
    let mut saw_tokens = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binders.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Struct(fields) => {
                            let names: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let binders = names.join(", ");
                            let entries: Vec<String> = names
                                .iter()
                                .map(|f| {
                                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Initializer for one named field: a missing `#[serde(default)]` field
/// falls back to `Default::default()` instead of erroring, so new wire
/// fields stay backward-compatible with frames from older peers.
fn field_init(f: &Field, ty: &str) -> String {
    let fname = &f.name;
    if f.default {
        format!(
            "{fname}: match ::serde::de::field(obj, \"{ty}\", \"{fname}\") {{\n\
                 Ok(v) => ::serde::Deserialize::from_value(v)?,\n\
                 Err(_) => ::std::default::Default::default(),\n\
             }}"
        )
    } else {
        format!(
            "{fname}: ::serde::Deserialize::from_value(::serde::de::field(obj, \"{ty}\", \"{fname}\")?)?"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, name)).collect();
            format!(
                "let obj = ::serde::de::object(v, \"{name}\")?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "(\"{vn}\", None) | (\"{vn}\", Some(::serde::Value::Null)) => Ok({name}::{vn}),"
                        ),
                        Shape::Tuple(1) => format!(
                            "(\"{vn}\", Some(payload)) => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&elems[{i}])?")
                                })
                                .collect();
                            format!(
                                "(\"{vn}\", Some(payload)) => {{\n\
                                     let elems = ::serde::de::tuple(payload, \"{name}::{vn}\", {n})?;\n\
                                     Ok({name}::{vn}({}))\n\
                                 }},",
                                elems.join(", ")
                            )
                        }
                        Shape::Struct(fields) => {
                            let ty = format!("{name}::{vn}");
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_init(f, &ty)).collect();
                            format!(
                                "(\"{vn}\", Some(payload)) => {{\n\
                                     let obj = ::serde::de::object(payload, \"{name}::{vn}\")?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match ::serde::de::variant(v, \"{name}\")? {{\n\
                     {}\n\
                     (other, _) => Err(::serde::Error::custom(format!(\n\
                         \"unknown {name} variant `{{other}}`\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

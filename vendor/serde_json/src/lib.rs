//! Offline stand-in for `serde_json`.
//!
//! Provides the surface this workspace uses: [`Value`], [`to_value`],
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`from_value`], and the
//! [`json!`] macro. Text encoding follows serde_json conventions: compact
//! output with no trailing spaces, non-finite floats serialized as `null`,
//! and object keys emitted in insertion order.

pub use serde::{Error, Value};

/// Convert any [`serde::Serialize`] type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree back into a concrete type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a concrete type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: always include a decimal point or exponent
                // so floats round-trip as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::custom("bad surrogate pair"))?,
                                    );
                                } else {
                                    return Err(Error::custom("lone surrogate in string"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::custom("bad \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Read 4 hex digits following `\u` (cursor sits on the `u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end - 1; // leave cursor on last hex digit; caller advances
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else {
            // Prefer i64 (matches serde_json's Number::as_i64 happy path),
            // fall back to u64 for values above i64::MAX.
            if let Ok(i) = text.parse::<i64>() {
                Ok(Value::Int(i))
            } else {
                text.parse::<u64>()
                    .map(Value::UInt)
                    .map_err(|_| Error::custom(format!("bad number `{text}`")))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal.
///
/// Supports the subset this workspace writes: `null`, arrays, objects with
/// string-literal keys, nested literals, and arbitrary expressions whose
/// types implement `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Object($crate::json_internal!(@object [] $($tt)*)) };
    ($other:expr) => { ::serde::Serialize::to_value(&$other) };
}

/// Recursive muncher backing [`json!`]. Not public API.
///
/// Structured values (`null`, `[..]`, `{..}`) are matched before the
/// catch-all `:expr` rules: once an `expr` fragment starts parsing there is
/// no backtracking, so ordering is what keeps nested literals working.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // -- array elements ----------------------------------------------------
    (@array [$($done:expr,)*]) => { vec![$($done,)*] };
    (@array [$($done:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($done,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($done:expr,)*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!([ $($inner)* ]),] $($($rest)*)?)
    };
    (@array [$($done:expr,)*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($done,)* $crate::json!({ $($inner)* }),] $($($rest)*)?)
    };
    (@array [$($done:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($done,)* ::serde::Serialize::to_value(&$next),] $($rest)*)
    };
    (@array [$($done:expr,)*] $last:expr) => {
        vec![$($done,)* ::serde::Serialize::to_value(&$last)]
    };
    // -- object entries ----------------------------------------------------
    (@object [$($done:expr,)*]) => { vec![$($done,)*] };
    (@object [$($done:expr,)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object
            [$($done,)* ($key.to_string(), $crate::Value::Null),] $($($rest)*)?)
    };
    (@object [$($done:expr,)*] $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object
            [$($done,)* ($key.to_string(), $crate::json!([ $($inner)* ])),] $($($rest)*)?)
    };
    (@object [$($done:expr,)*] $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@object
            [$($done,)* ($key.to_string(), $crate::json!({ $($inner)* })),] $($($rest)*)?)
    };
    (@object [$($done:expr,)*] $key:literal : $val:expr , $($rest:tt)*) => {
        $crate::json_internal!(@object
            [$($done,)* ($key.to_string(), ::serde::Serialize::to_value(&$val)),] $($rest)*)
    };
    (@object [$($done:expr,)*] $key:literal : $val:expr) => {
        vec![$($done,)* ($key.to_string(), ::serde::Serialize::to_value(&$val))]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out, None, 0);
            assert_eq!(out, text, "roundtrip of {text}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,3],"b":{"c":true,"d":null},"e":"x\"y"}"#;
        let v = parse(text).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let v: f64 = from_str(&s).unwrap();
        assert_eq!(v, 2.0);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({
            "name": "fig6",
            "count": 3,
            "flags": [true, false],
            "nested": { "pi": 3.25 },
        });
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "fig6");
        assert_eq!(v.get("count").unwrap().as_i64().unwrap(), 3);
        assert_eq!(v.get("flags").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("nested")
                .unwrap()
                .get("pi")
                .unwrap()
                .as_f64()
                .unwrap(),
            3.25
        );
    }

    #[test]
    fn json_macro_accepts_arbitrary_expressions() {
        let rows = [1u64, 2, 3];
        let v = json!({
            "count": rows.len(),
            "label": format!("n={}", rows.len()),
            "empty": {},
            "nothing": null,
            "seq": [rows.len(), 9],
        });
        assert_eq!(v.get("count").unwrap().as_u64().unwrap(), 3);
        assert_eq!(v.get("label").unwrap().as_str().unwrap(), "n=3");
        assert!(v.get("empty").unwrap().as_object().unwrap().is_empty());
        assert!(v.get("nothing").unwrap().is_null());
        assert_eq!(v.get("seq").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "a": 1 });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1}";
        let encoded = to_string(&original.to_string()).unwrap();
        let decoded: String = from_str(&encoded).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A\u{1F600}");
    }
}
